//! Test-and-test-and-set spinlock with exponential backoff.
//!
//! This is the synchronization primitive whose cost the paper's allocator is
//! designed *around*: the old DYNIX allocator put one of these in front of a
//! traditional heap, and every acquisition moved the lock's cache line (and
//! the data behind it) across the bus. The new allocator still uses
//! spinlocks, but only in the global and coalescing layers, where the
//! per-CPU `target` amortization makes them rare.
//!
//! The implementation is the classic TTAS loop: one atomic swap in the
//! uncontended case, read-only spinning (polling a locally cached copy of
//! the lock word) plus capped exponential backoff under contention. Probe
//! events are emitted so the SMP simulator can price acquisitions; spin
//! statistics are only updated on the contended path, keeping the
//! uncontended acquisition as lean as the paper assumes.

use core::cell::UnsafeCell;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

use crate::counter::EventCounter;
use crate::probe::{self, ProbeEvent};

/// Statistics gathered on the contended path of a [`SpinLock`].
#[derive(Default)]
pub struct SpinStats {
    /// Acquisitions that found the lock held.
    pub contended: EventCounter,
    /// Total spin-loop iterations across all contended acquisitions.
    pub spins: EventCounter,
}

/// A mutual-exclusion spinlock protecting a `T`.
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    stats: SpinStats,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the required mutual exclusion; `T` must still be
// `Send` because the protected value is accessed from whichever thread holds
// the lock.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
// SAFETY: moving the lock moves the value; no thread affinity is retained.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            stats: SpinStats {
                contended: EventCounter::new(),
                spins: EventCounter::new(),
            },
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, spinning until it is available.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        probe::emit(ProbeEvent::LockAcquire {
            lock: self as *const _ as *const u8 as usize,
        });
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return SpinLockGuard { lock: self };
        }
        self.lock_contended()
    }

    #[cold]
    fn lock_contended(&self) -> SpinLockGuard<'_, T> {
        self.stats.contended.inc();
        let mut spins = 0u64;
        let mut backoff = 1u32;
        loop {
            // Test (read-only) before test-and-set, so the spin loop hits in
            // the local cache instead of hammering the bus.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                for _ in 0..backoff {
                    core::hint::spin_loop();
                }
                backoff = (backoff * 2).min(64);
                // A kernel spinlock never yields — its holder cannot be
                // preempted. In userspace the holder *can* be scheduled
                // out, and on an oversubscribed host pure spinning
                // livelocks; once backoff saturates, give the holder a
                // time slice. (No effect on the simulator: virtual CPUs
                // never actually contend in host time.)
                if backoff == 64 {
                    std::thread::yield_now();
                }
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.stats.spins.add(spins);
                return SpinLockGuard { lock: self };
            }
            spins += 1;
        }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            probe::emit(ProbeEvent::LockAcquire {
                lock: self as *const _ as *const u8 as usize,
            });
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Contention statistics (updated only on contended acquisitions).
    pub fn stats(&self) -> &SpinStats {
        &self.stats
    }
}

/// RAII guard providing access to the protected value.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard proves the lock is held, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves the lock is held, so access is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        probe::emit(ProbeEvent::LockRelease {
            lock: self.lock as *const _ as *const u8 as usize,
        });
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_lock_unlock() {
        let l = SpinLock::new(5);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        assert!(l.is_locked());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_threads() {
        let l = SpinLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25_000 {
                        *l.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.lock(), 100_000);
    }

    #[test]
    fn probes_are_emitted_when_recording() {
        let l = SpinLock::new(());
        let ((), ev) = probe::record(|| {
            let _g = l.lock();
        });
        assert!(matches!(ev[0], ProbeEvent::LockAcquire { .. }));
        assert!(matches!(ev[1], ProbeEvent::LockRelease { .. }));
    }
}
