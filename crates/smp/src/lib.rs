//! SMP substrate for the kmem allocator reproduction.
//!
//! This crate models the pieces of a shared-memory multiprocessor that the
//! allocator in McKenney & Slingwine (USENIX Winter 1993) assumes from the
//! surrounding kernel:
//!
//! * CPU identities and a registry that grants each execution context
//!   exclusive ownership of one virtual CPU ([`cpu::CpuId`],
//!   [`registry::CpuRegistry`]).
//! * Per-CPU storage with false-sharing avoidance ([`percpu::PerCpu`],
//!   [`pad::CachePadded`]).
//! * A simulated interrupt-disable primitive ([`irq::ExclusionFlag`]) that
//!   asserts the non-reentrancy the paper's per-CPU caches rely on.
//! * A test-and-test-and-set spinlock with exponential backoff and
//!   contention statistics ([`spinlock::SpinLock`]) — used by the global and
//!   coalescing layers of the new allocator and by the naive
//!   parallelizations of the baseline allocators.
//! * Relaxed-atomic event counters for layer hit/miss statistics
//!   ([`counter::EventCounter`]).
//! * A generation-counted tagged-pointer atomic
//!   ([`atomics::TaggedAtomic`]) — the ABA-safe head word for the
//!   lock-free Treiber stacks used by the allocator's global layer.
//! * A bounded, deduplicated, wait-free MPSC mailbox
//!   ([`mailbox::Mailbox`]) through which hot CPUs hand slow-path chores
//!   to a maintenance core instead of running them inline.
//! * Deterministic, seed-driven failpoints ([`faults::Faults`]) that the
//!   allocator layers consult at every fallible boundary, so out-of-memory
//!   paths can be forced and tested instead of waiting for real exhaustion.
//! * A probe layer ([`probe`]) through which allocator slow paths report
//!   lock and shared-cache-line events to the discrete-event SMP simulator
//!   (`kmem-sim`), standing in for the logic analyzer and 25-CPU Symmetry
//!   hardware used in the paper.

pub mod atomics;
pub mod counter;
pub mod cpu;
pub mod faults;
pub mod irq;
pub mod mailbox;
pub mod pad;
pub mod percpu;
pub mod probe;
pub mod registry;
pub mod spinlock;
pub mod topology;

pub use atomics::{TaggedAtomic, TaggedPtr};
pub use counter::{EventCounter, LocalCounter};
pub use cpu::{CpuId, MAX_CPUS};
pub use faults::{FailPolicy, FaultPlan, Faults, SiteStats};
pub use irq::ExclusionFlag;
pub use mailbox::Mailbox;
pub use pad::CachePadded;
pub use percpu::PerCpu;
pub use registry::{ClaimError, CpuClaim, CpuRegistry};
pub use spinlock::{SpinLock, SpinLockGuard};
pub use topology::{NodeId, NodeMapping, Topology, MAX_NODES};
