//! Simulated interrupt disabling.
//!
//! The paper's per-CPU caches need no synchronization primitives "other than
//! the disabling of interrupts": the only concurrent entity on the same CPU
//! is an interrupt handler, which is excluded by `splhi()`-style masking.
//!
//! In this userspace reproduction one execution context owns each virtual
//! CPU, so there is nothing to mask — but the *invariant* interrupt masking
//! provides (per-CPU critical sections never nest) is still worth policing.
//! [`ExclusionFlag`] is a zero-cost-in-release stand-in: entering a per-CPU
//! critical section asserts (in debug builds) that the section is not
//! already active on that CPU, which catches exactly the bugs real interrupt
//! masking would prevent (e.g. re-entering the allocator from a signal
//! handler or a recursive call while per-CPU lists are mid-update).

use core::cell::Cell;

/// Per-CPU non-reentrancy flag modelling `splhi()`/`splx()`.
#[derive(Default)]
pub struct ExclusionFlag {
    active: Cell<bool>,
}

impl ExclusionFlag {
    /// Creates a new, inactive flag.
    pub const fn new() -> Self {
        ExclusionFlag {
            active: Cell::new(false),
        }
    }

    /// Enters the simulated interrupts-disabled section.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the section is already active, i.e. if the
    /// per-CPU critical section would have been re-entered — a bug that real
    /// interrupt masking exists to prevent.
    #[inline]
    pub fn enter(&self) -> IrqGuard<'_> {
        debug_assert!(
            !self.active.replace(true),
            "per-CPU critical section re-entered (interrupts were 'disabled')"
        );
        #[cfg(not(debug_assertions))]
        self.active.set(true);
        IrqGuard { flag: self }
    }

    /// Returns whether the section is currently active.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.get()
    }
}

/// Guard returned by [`ExclusionFlag::enter`]; re-enables "interrupts" on
/// drop.
pub struct IrqGuard<'a> {
    flag: &'a ExclusionFlag,
}

impl Drop for IrqGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.flag.active.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_and_drop_toggle_active() {
        let f = ExclusionFlag::new();
        assert!(!f.is_active());
        {
            let _g = f.enter();
            assert!(f.is_active());
        }
        assert!(!f.is_active());
    }

    #[test]
    fn sequential_sections_are_fine() {
        let f = ExclusionFlag::new();
        for _ in 0..3 {
            let _g = f.enter();
        }
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    #[cfg(debug_assertions)]
    fn reentry_is_caught() {
        let f = ExclusionFlag::new();
        let _g1 = f.enter();
        let _g2 = f.enter();
    }
}
