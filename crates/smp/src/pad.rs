//! Cache-line padding.

use core::ops::{Deref, DerefMut};

/// Size to which per-CPU data is padded and aligned.
///
/// 128 bytes covers both 64-byte lines and adjacent-line prefetchers, the
/// same choice made by crossbeam and the Linux kernel's
/// `____cacheline_aligned_in_smp` on large x86 systems.
pub const CACHE_LINE: usize = 128;

/// Pads and aligns `T` to [`CACHE_LINE`] bytes.
///
/// The paper's allocator gets its speed from *locality*: each per-CPU cache
/// must live on cache lines no other CPU ever writes. Wrapping each slot of
/// a per-CPU array in `CachePadded` guarantees that two slots never share a
/// line (no false sharing).
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a padded cell.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded cell.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_slots_do_not_share_lines() {
        let slots: [CachePadded<u8>; 2] = [CachePadded::new(0), CachePadded::new(0)];
        let a = &*slots[0] as *const u8 as usize;
        let b = &*slots[1] as *const u8 as usize;
        assert!(b - a >= CACHE_LINE);
        assert_eq!(a % CACHE_LINE, 0);
    }

    #[test]
    fn deref_round_trip() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }
}
