//! NUMA topology: nodes, and the CPU-to-node mapping.
//!
//! The paper's Symmetry 2000 is a flat-bus machine, but the allocator's
//! descendants run on NUMA boxes where a cache line homed on a remote node
//! costs far more than a local miss. The topology here is deliberately
//! minimal: `N` nodes over `M` CPUs with a configurable mapping, enough for
//! the allocator to shard its global pools per node and for the DES
//! simulator to price cross-node transfers. One node is the degenerate
//! (paper-faithful) configuration and must behave exactly like the
//! un-sharded allocator.

use core::fmt;

use crate::cpu::CpuId;

/// Maximum number of NUMA nodes supported by the substrate.
///
/// Small on purpose: node ids are stored in a byte inside page descriptors,
/// and the sweeps only exercise 1/2/4 nodes.
pub const MAX_NODES: usize = 8;

/// Identity of one NUMA node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_NODES`.
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_NODES, "node index {index} out of range");
        NodeId(index as u16)
    }

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// How CPU indices map onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeMapping {
    /// Contiguous blocks: CPUs `[k*ceil(M/N), ...)` belong to node `k` —
    /// the usual firmware enumeration (all of socket 0, then socket 1...).
    Block,
    /// Round-robin: CPU `i` belongs to node `i % N` — the adversarial
    /// interleaving, useful for making every neighbour remote.
    Stride,
}

/// A NUMA topology: `nnodes` nodes over `ncpus` CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nnodes: usize,
    ncpus: usize,
    mapping: NodeMapping,
}

impl Topology {
    /// Creates a topology of `nnodes` nodes over `ncpus` CPUs.
    ///
    /// # Panics
    ///
    /// Panics if `nnodes` is zero or exceeds [`MAX_NODES`], or if there are
    /// fewer CPUs than nodes (a node with no CPU could never be refilled
    /// locally, which the sharded allocator does not model).
    pub fn new(nnodes: usize, ncpus: usize, mapping: NodeMapping) -> Self {
        assert!(
            (1..=MAX_NODES).contains(&nnodes),
            "node count {nnodes} out of range 1..={MAX_NODES}"
        );
        assert!(
            ncpus >= nnodes,
            "{ncpus} CPUs cannot cover {nnodes} nodes (every node needs a CPU)"
        );
        Topology {
            nnodes,
            ncpus,
            mapping,
        }
    }

    /// The degenerate single-node topology — the paper's flat-bus machine.
    pub fn single(ncpus: usize) -> Self {
        Topology::new(1, ncpus.max(1), NodeMapping::Block)
    }

    /// Number of nodes.
    #[inline]
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Number of CPUs.
    #[inline]
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// The CPU-to-node mapping rule.
    #[inline]
    pub fn mapping(&self) -> NodeMapping {
        self.mapping
    }

    /// Home node of `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside this topology.
    #[inline]
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        let i = cpu.index();
        assert!(
            i < self.ncpus,
            "{cpu} outside a {}-cpu topology",
            self.ncpus
        );
        let n = match self.mapping {
            NodeMapping::Block => i / self.ncpus.div_ceil(self.nnodes),
            NodeMapping::Stride => i % self.nnodes,
        };
        NodeId::new(n)
    }

    /// CPUs of `node`, as raw indices in ascending order.
    pub fn cpus_of(&self, node: NodeId) -> Vec<usize> {
        (0..self.ncpus)
            .filter(|&i| self.node_of(CpuId::new(i)) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_maps_every_cpu_to_node_zero() {
        let t = Topology::single(7);
        assert_eq!(t.nnodes(), 1);
        for i in 0..7 {
            assert_eq!(t.node_of(CpuId::new(i)), NodeId::new(0));
        }
        assert_eq!(t.cpus_of(NodeId::new(0)).len(), 7);
    }

    #[test]
    fn block_mapping_fills_contiguous_ranges() {
        let t = Topology::new(2, 8, NodeMapping::Block);
        assert_eq!(t.cpus_of(NodeId::new(0)), vec![0, 1, 2, 3]);
        assert_eq!(t.cpus_of(NodeId::new(1)), vec![4, 5, 6, 7]);
    }

    #[test]
    fn block_mapping_with_remainder_covers_every_node() {
        // 25 CPUs over 4 nodes: ceil(25/4) = 7 per block, last block short.
        let t = Topology::new(4, 25, NodeMapping::Block);
        for n in 0..4 {
            assert!(
                !t.cpus_of(NodeId::new(n)).is_empty(),
                "node {n} has no CPUs"
            );
        }
        let total: usize = (0..4).map(|n| t.cpus_of(NodeId::new(n)).len()).sum();
        assert_eq!(total, 25);
        assert_eq!(t.node_of(CpuId::new(0)), NodeId::new(0));
        assert_eq!(t.node_of(CpuId::new(24)), NodeId::new(3));
    }

    #[test]
    fn stride_mapping_round_robins() {
        let t = Topology::new(3, 9, NodeMapping::Stride);
        assert_eq!(t.cpus_of(NodeId::new(0)), vec![0, 3, 6]);
        assert_eq!(t.cpus_of(NodeId::new(1)), vec![1, 4, 7]);
        assert_eq!(t.cpus_of(NodeId::new(2)), vec![2, 5, 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_nodes_rejected() {
        let _ = Topology::new(0, 4, NodeMapping::Block);
    }

    #[test]
    #[should_panic(expected = "every node needs a CPU")]
    fn more_nodes_than_cpus_rejected() {
        let _ = Topology::new(4, 2, NodeMapping::Block);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_id_range_checked() {
        let _ = NodeId::new(MAX_NODES);
    }

    #[test]
    fn display_names_node() {
        assert_eq!(NodeId::new(2).to_string(), "node2");
        assert_eq!(format!("{:?}", NodeId::new(5)), "node5");
    }
}
