//! Deterministic, seed-driven failpoints for the allocator's layer
//! boundaries.
//!
//! Real kernels test their out-of-memory behaviour with fault injection
//! (Linux's `failslab`/`fail_page_alloc`); this module is the in-tree
//! equivalent for the McKenney & Slingwine reproduction. A failpoint is a
//! named *site* — `faults::PHYS_CLAIM`, `faults::PERCPU_REFILL`, … — that a
//! layer consults at the top of a fallible operation:
//!
//! ```text
//! if self.faults.hit(faults::PHYS_CLAIM) { return Err(...); }
//! ```
//!
//! Each site carries an independently configurable [`FailPolicy`]:
//! fail-every-Nth, fail-after-K, probabilistic from a SplitMix64 seed, or a
//! one-shot scripted sequence. Everything is deterministic given the
//! policies and seeds, so a failing torture run reproduces exactly.
//!
//! Plans are *handle-scoped*, not process-global: a [`Faults`] handle wraps
//! an optional [`Arc<FaultPlan>`], and an arena built with `Faults::none()`
//! (the default) pays one branch on an always-`None` option per *slow-path*
//! consultation — the per-CPU cache hit path never reaches a failpoint at
//! all. Tests running in parallel threads therefore never see each other's
//! fault configuration.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::spinlock::SpinLock;

/// Failpoint site: [`crate::faults`] consult in the physical frame pool's
/// `claim`.
pub const PHYS_CLAIM: &str = "phys.claim";
/// Failpoint site: carving a fresh vmblk out of the kernel space.
pub const VM_CARVE: &str = "vm.carve";
/// Failpoint site: the vmblk layer's lock-free whole-page cache (a firing
/// consult bypasses the cache, forcing the locked carve/merge slow path).
pub const VMBLK_CACHE: &str = "vmblk.cache";
/// Failpoint site: the coalesce-to-page layer acquiring / carving a page.
pub const PAGE_GET: &str = "page.get";
/// Failpoint site: the coalesce-to-page layer's claim of a fully free page
/// (a firing consult defers the whole-page release, leaving the page
/// listed for a later possessor to reclaim).
pub const PAGE_COALESCE: &str = "page.coalesce";
/// Failpoint site: the global layer's chain get (injects a miss).
pub const GLOBAL_GET: &str = "global.get";
/// Failpoint site: the global layer's spill boundary (forces an early
/// spill-to-page instead of suppressing one — spills must never be lost).
pub const GLOBAL_SPILL: &str = "global.spill";
/// Failpoint site: the global layer's cross-node steal (a firing consult
/// skips the remote shards, forcing the refill down to the page layer).
pub const GLOBAL_STEAL: &str = "global.steal";
/// Failpoint site: installing a refill chain into a per-CPU cache.
pub const PERCPU_REFILL: &str = "percpu.refill";

/// Every registered failpoint site, in layer order (outermost backend
/// first). Torture drivers iterate this to arm each site in rotation.
pub const ALL_SITES: [&str; 9] = [
    PHYS_CLAIM,
    VM_CARVE,
    VMBLK_CACHE,
    PAGE_GET,
    PAGE_COALESCE,
    GLOBAL_GET,
    GLOBAL_SPILL,
    GLOBAL_STEAL,
    PERCPU_REFILL,
];

/// SplitMix64 step (same constants as `kmem-testkit`'s seeder; duplicated
/// here because the substrate crate sits below the testkit in the
/// dependency order).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-site firing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailPolicy {
    /// Never fire (the initial state of every site).
    Off,
    /// Fire on every `n`th hit (1 = every hit).
    EveryNth(u64),
    /// Fire on every hit after the first `k` (0 = every hit).
    AfterK(u64),
    /// Fire when the next SplitMix64 output's low 16 bits fall below
    /// `threshold` — i.e. with probability `threshold / 65536` — from a
    /// deterministic per-site stream seeded with `seed`.
    Prob {
        /// Firing threshold out of 65536.
        threshold: u16,
        /// Seed of the site's private SplitMix64 stream.
        seed: u64,
    },
    /// Consume one scripted verdict per hit; the site turns itself [`Off`]
    /// once the script is exhausted.
    ///
    /// [`Off`]: FailPolicy::Off
    Script(Vec<bool>),
}

impl FailPolicy {
    /// Whether this policy can ever fire (an empty script cannot).
    fn armed(&self) -> bool {
        match self {
            FailPolicy::Off => false,
            FailPolicy::EveryNth(_) | FailPolicy::AfterK(_) | FailPolicy::Prob { .. } => true,
            FailPolicy::Script(s) => !s.is_empty(),
        }
    }
}

struct SiteState {
    policy: FailPolicy,
    /// Private SplitMix64 state for `Prob`; script cursor storage reuses
    /// the policy itself.
    prob_state: u64,
    script: VecDeque<bool>,
    hits: u64,
    fired: u64,
}

impl SiteState {
    fn new() -> Self {
        SiteState {
            policy: FailPolicy::Off,
            prob_state: 0,
            script: VecDeque::new(),
            hits: 0,
            fired: 0,
        }
    }
}

/// Counters for one failpoint site, as returned by
/// [`FaultPlan::site_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// Site name (one of [`ALL_SITES`] unless callers invent their own).
    pub site: String,
    /// Times the site was consulted while the plan was armed.
    pub hits: u64,
    /// Times the site fired (reported failure).
    pub fired: u64,
}

/// A set of failpoint sites with their policies and counters.
///
/// Shared by [`Faults`] handles; all methods are thread-safe. Sites are
/// registered lazily on first [`set`](FaultPlan::set) or first armed hit.
pub struct FaultPlan {
    sites: SpinLock<BTreeMap<String, SiteState>>,
    /// Number of sites whose policy can currently fire. While zero, `hit`
    /// returns immediately without taking the lock (and without counting).
    armed: AtomicUsize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// Creates an empty plan with every site off.
    pub fn new() -> Self {
        FaultPlan {
            sites: SpinLock::new(BTreeMap::new()),
            armed: AtomicUsize::new(0),
        }
    }

    /// Installs `policy` at `site`, replacing the previous policy. Hit and
    /// fire counters for the site are preserved.
    pub fn set(&self, site: &str, policy: FailPolicy) {
        let mut sites = self.sites.lock();
        let st = sites.entry(site.to_string()).or_insert_with(SiteState::new);
        let was = st.policy.armed();
        let now = policy.armed();
        if let FailPolicy::Prob { seed, .. } = policy {
            st.prob_state = seed;
        }
        st.script = match &policy {
            FailPolicy::Script(s) => s.iter().copied().collect(),
            _ => VecDeque::new(),
        };
        st.policy = policy;
        match (was, now) {
            (false, true) => {
                self.armed.fetch_add(1, Ordering::Release);
            }
            (true, false) => {
                self.armed.fetch_sub(1, Ordering::Release);
            }
            _ => {}
        }
    }

    /// Turns every site off (counters are preserved).
    pub fn reset(&self) {
        let mut sites = self.sites.lock();
        for st in sites.values_mut() {
            st.policy = FailPolicy::Off;
            st.script.clear();
        }
        self.armed.store(0, Ordering::Release);
    }

    /// Consults `site`: returns `true` if the injected operation should
    /// fail. While no site is armed this is one atomic load and a branch.
    pub fn hit(&self, site: &str) -> bool {
        if self.armed.load(Ordering::Acquire) == 0 {
            return false;
        }
        let mut sites = self.sites.lock();
        let st = sites.entry(site.to_string()).or_insert_with(SiteState::new);
        st.hits += 1;
        let fire = match &st.policy {
            FailPolicy::Off => false,
            FailPolicy::EveryNth(n) => *n != 0 && st.hits.is_multiple_of(*n),
            FailPolicy::AfterK(k) => st.hits > *k,
            FailPolicy::Prob { threshold, .. } => {
                (splitmix64(&mut st.prob_state) & 0xFFFF) < u64::from(*threshold)
            }
            FailPolicy::Script(_) => {
                let verdict = st.script.pop_front().unwrap_or(false);
                if st.script.is_empty() {
                    st.policy = FailPolicy::Off;
                    self.armed.fetch_sub(1, Ordering::Release);
                }
                verdict
            }
        };
        if fire {
            st.fired += 1;
        }
        fire
    }

    /// Per-site hit/fire counters, sorted by site name.
    pub fn site_stats(&self) -> Vec<SiteStats> {
        self.sites
            .lock()
            .iter()
            .map(|(site, st)| SiteStats {
                site: site.clone(),
                hits: st.hits,
                fired: st.fired,
            })
            .collect()
    }

    /// Total (hits, fired) summed over all sites.
    pub fn totals(&self) -> (u64, u64) {
        self.sites
            .lock()
            .values()
            .fold((0, 0), |(h, f), st| (h + st.hits, f + st.fired))
    }
}

impl core::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (hits, fired) = self.totals();
        f.debug_struct("FaultPlan")
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("hits", &hits)
            .field("fired", &fired)
            .finish()
    }
}

/// A cheap, cloneable handle to an optional [`FaultPlan`].
///
/// `Faults::none()` (also the `Default`) is a completely passive handle:
/// every consultation is a `None` check. `Faults::with_plan()` creates a
/// fresh shared plan whose policies are programmed through
/// [`plan`](Faults::plan).
#[derive(Clone, Default)]
pub struct Faults(Option<Arc<FaultPlan>>);

impl Faults {
    /// A handle with no plan: every site is permanently off.
    pub fn none() -> Self {
        Faults(None)
    }

    /// A handle owning a fresh, all-off plan.
    pub fn with_plan() -> Self {
        Faults(Some(Arc::new(FaultPlan::new())))
    }

    /// Whether this handle carries a plan at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The shared plan, if any — use it to [`set`](FaultPlan::set) policies
    /// or read [`site_stats`](FaultPlan::site_stats).
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.0.as_ref()
    }

    /// Consults `site` on the underlying plan; `false` without one.
    #[inline]
    pub fn hit(&self, site: &str) -> bool {
        match &self.0 {
            None => false,
            Some(plan) => plan.hit(site),
        }
    }

    /// Total (hits, fired) over all sites; zeros without a plan.
    pub fn totals(&self) -> (u64, u64) {
        self.0.as_ref().map_or((0, 0), |plan| plan.totals())
    }
}

impl core::fmt::Debug for Faults {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.0 {
            None => f.write_str("Faults(off)"),
            Some(plan) => write!(f, "Faults({plan:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_handle_never_fires_and_counts_nothing() {
        let faults = Faults::none();
        for _ in 0..100 {
            assert!(!faults.hit(PHYS_CLAIM));
        }
        assert_eq!(faults.totals(), (0, 0));
        assert!(!faults.is_enabled());
    }

    #[test]
    fn unarmed_plan_skips_counting() {
        let faults = Faults::with_plan();
        assert!(!faults.hit(PHYS_CLAIM));
        // All sites off: the fast path bails before the site map.
        assert_eq!(faults.totals(), (0, 0));
    }

    #[test]
    fn every_nth_fires_on_multiples() {
        let faults = Faults::with_plan();
        let plan = faults.plan().unwrap();
        plan.set(PAGE_GET, FailPolicy::EveryNth(3));
        let fired: Vec<bool> = (0..9).map(|_| faults.hit(PAGE_GET)).collect();
        assert_eq!(
            fired,
            [false, false, true, false, false, true, false, false, true]
        );
        let stats = plan.site_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].hits, 9);
        assert_eq!(stats[0].fired, 3);
    }

    #[test]
    fn after_k_fires_forever_past_the_threshold() {
        let faults = Faults::with_plan();
        faults
            .plan()
            .unwrap()
            .set(GLOBAL_GET, FailPolicy::AfterK(2));
        let fired: Vec<bool> = (0..5).map(|_| faults.hit(GLOBAL_GET)).collect();
        assert_eq!(fired, [false, false, true, true, true]);
    }

    #[test]
    fn prob_is_deterministic_per_seed_and_roughly_calibrated() {
        let run = |seed: u64| -> Vec<bool> {
            let faults = Faults::with_plan();
            faults.plan().unwrap().set(
                VM_CARVE,
                FailPolicy::Prob {
                    threshold: 0x8000, // 50 %
                    seed,
                },
            );
            (0..1000).map(|_| faults.hit(VM_CARVE)).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same verdicts");
        let fires = a.iter().filter(|&&f| f).count();
        assert!(
            (300..700).contains(&fires),
            "50% policy fired {fires}/1000 times"
        );
        assert_ne!(a, run(43), "different seeds should diverge");
    }

    #[test]
    fn script_consumes_once_then_disarms() {
        let faults = Faults::with_plan();
        let plan = faults.plan().unwrap();
        plan.set(PERCPU_REFILL, FailPolicy::Script(vec![true, false, true]));
        assert!(faults.hit(PERCPU_REFILL));
        assert!(!faults.hit(PERCPU_REFILL));
        assert!(faults.hit(PERCPU_REFILL));
        // Script exhausted: the site turned itself off and disarmed the
        // plan, so further hits are uncounted fast-path exits.
        let (hits, fired) = faults.totals();
        assert!(!faults.hit(PERCPU_REFILL));
        assert_eq!(faults.totals(), (hits, fired));
        assert_eq!((hits, fired), (3, 2));
    }

    #[test]
    fn set_off_disarms_and_reset_clears_everything() {
        let faults = Faults::with_plan();
        let plan = faults.plan().unwrap();
        plan.set(PHYS_CLAIM, FailPolicy::AfterK(0));
        plan.set(PAGE_GET, FailPolicy::EveryNth(1));
        assert!(faults.hit(PHYS_CLAIM));
        plan.set(PHYS_CLAIM, FailPolicy::Off);
        assert!(faults.hit(PAGE_GET), "other sites stay armed");
        assert!(!faults.hit(PHYS_CLAIM));
        plan.reset();
        let (hits, _) = faults.totals();
        assert!(!faults.hit(PAGE_GET));
        assert_eq!(faults.totals().0, hits, "reset disarms the fast path");
    }

    #[test]
    fn policies_are_independent_per_site() {
        let faults = Faults::with_plan();
        let plan = faults.plan().unwrap();
        for (i, site) in ALL_SITES.iter().enumerate() {
            plan.set(site, FailPolicy::EveryNth(i as u64 + 1));
        }
        for (i, site) in ALL_SITES.iter().enumerate() {
            let n = i as u64 + 1;
            let fires = (0..12).filter(|_| faults.hit(site)).count() as u64;
            assert_eq!(fires, 12 / n, "site {site} with EveryNth({n})");
        }
    }
}
