//! Relaxed-atomic event counters.
//!
//! The miss-rate experiment (paper §"Distributed Lock Manager Benchmark")
//! needs per-layer hit/miss counts that are cheap enough to leave enabled in
//! the hot path. `Relaxed` increments compile to plain `lock xadd`-free
//! `add` on a line the counting CPU owns when the counter sits in per-CPU
//! storage, and even the shared counters are only touched on slow paths.

use core::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct EventCounter {
    value: AtomicU64,
}

impl EventCounter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        EventCounter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Reads the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

impl core::fmt::Debug for EventCounter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EventCounter({})", self.get())
    }
}

/// Computes a rate `num / den`, returning 0.0 for an empty denominator.
///
/// Used to turn (miss, access) counter pairs into the paper's miss rates.
pub fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = EventCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn rate_handles_zero_denominator() {
        assert_eq!(rate(3, 0), 0.0);
        assert!((rate(1, 8) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = EventCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
