//! Cheap always-on event counters.
//!
//! The miss-rate experiment (paper §"Distributed Lock Manager Benchmark")
//! needs per-layer hit/miss counts that are cheap enough to leave enabled in
//! the hot path. Two flavours live here:
//!
//! * [`EventCounter`] — a shared counter incremented with an atomic RMW;
//!   used on slow paths where several CPUs may count the same event
//!   (global-pool gets/puts, page acquisitions).
//! * [`LocalCounter`] — a **single-writer** counter: the increment is a
//!   plain load/store pair, not an RMW, because only the owning CPU ever
//!   writes it. This is what the per-CPU cache statistics use; on a
//!   cache-line the CPU owns it costs the same as bumping a plain `u64`.
//!
//! Both publish with `Release` and are read with `Acquire`. On x86 those
//! compile to the same plain `mov` as `Relaxed`, and they buy a real
//! guarantee for observers: if the owner bumps counter A *before* counter
//! B (e.g. `alloc` before `alloc_miss`), a snapshot thread that reads B
//! first and A second can never see `B > A`. The snapshot layer relies on
//! this to assert `miss <= access` invariants on live, unsynchronized
//! samples.

use core::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter (shared; RMW increments).
#[derive(Default)]
pub struct EventCounter {
    value: AtomicU64,
}

impl EventCounter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        EventCounter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Release);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Reads the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Resets the counter to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::AcqRel)
    }
}

impl core::fmt::Debug for EventCounter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EventCounter({})", self.get())
    }
}

/// A single-writer event counter: plain load/store, no RMW.
///
/// Only one thread (the owning CPU) may ever call [`LocalCounter::bump`] /
/// [`LocalCounter::add`]; any thread may [`LocalCounter::get`]. Violating
/// the single-writer rule loses increments but is still memory-safe — this
/// is a statistics primitive, not a synchronization primitive.
#[derive(Default)]
pub struct LocalCounter {
    value: AtomicU64,
}

impl LocalCounter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        LocalCounter {
            value: AtomicU64::new(0),
        }
    }

    /// Single-writer increment; returns the new count (callers use it for
    /// cheap 1-in-N sampling decisions without a second load).
    #[inline]
    pub fn bump(&self) -> u64 {
        let n = self.value.load(Ordering::Relaxed) + 1;
        self.value.store(n, Ordering::Release);
        n
    }

    /// Single-writer add.
    #[inline]
    pub fn add(&self, n: u64) {
        let v = self.value.load(Ordering::Relaxed) + n;
        self.value.store(v, Ordering::Release);
    }

    /// Reads the current count (any thread).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }
}

impl core::fmt::Debug for LocalCounter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LocalCounter({})", self.get())
    }
}

/// Computes a rate `num / den`, returning 0.0 for an empty denominator.
///
/// Used to turn (miss, access) counter pairs into the paper's miss rates.
pub fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = EventCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn rate_handles_zero_denominator() {
        assert_eq!(rate(3, 0), 0.0);
        assert!((rate(1, 8) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn local_counter_bumps_and_reports_new_value() {
        let c = LocalCounter::new();
        assert_eq!(c.bump(), 1);
        assert_eq!(c.bump(), 2);
        c.add(5);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn local_counter_single_writer_is_visible_to_readers() {
        // One writer bumps `a` then `b`; a reader loading `b` first must
        // never observe `b > a` (the ordering the snapshot layer needs).
        let a = LocalCounter::new();
        let b = LocalCounter::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let done = &done;
            s.spawn(|| {
                for _ in 0..100_000 {
                    a.bump();
                    b.bump();
                }
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                let b_seen = b.get();
                let a_seen = a.get();
                assert!(b_seen <= a_seen, "reader saw b={b_seen} > a={a_seen}");
            }
        });
        assert_eq!(a.get(), 100_000);
        assert_eq!(b.get(), 100_000);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = EventCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
