//! Lock-free tagged-pointer atomics for intrusive Treiber stacks.
//!
//! The global layer's chain hand-off is a pure LIFO: a CPU pushes an
//! intact `target`-sized chain, another CPU pops one. A Treiber stack
//! makes both operations a single compare-and-swap on one word — but a
//! bare pointer CAS is unsound for pop: between loading the head `A` and
//! the CAS, `A` can be popped, recycled, and pushed again with a
//! different successor (the ABA problem), and the CAS would splice a
//! stale next pointer into the stack.
//!
//! [`TaggedAtomic`] defeats ABA the classic way (IBM System/370 free-list
//! technique): the head word packs a 48-bit pointer with a 16-bit
//! generation tag, and every successful exchange increments the tag. A
//! pop that raced a full push-pop cycle of the same address then fails
//! its CAS on the tag alone and retries with fresh state. Sixteen bits
//! of generation would need to wrap *exactly* between one thread's load
//! and its CAS — 65 536 complete stack operations inside one
//! load-to-CAS window — for a false match, which the bounded size of the
//! global pool (at most `2 * gbltarget` blocks plus one in-flight chain
//! per CPU) makes unreachable in practice.
//!
//! The primitive emits [`probe`] events ([`ProbeEvent::LineRead`] on
//! load, [`ProbeEvent::LineWrite`] on each CAS attempt) so the
//! discrete-event simulator in `kmem-sim` can price the cache-line
//! traffic of lock-free contention exactly as it prices spinlock
//! hand-offs.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::probe::{self, ProbeEvent};

/// Bits of generation tag packed above the pointer.
pub const TAG_BITS: u32 = 16;
/// Bits of pointer kept; covers the canonical user-space range of every
/// 64-bit target this workspace builds on.
pub const PTR_BITS: u32 = 48;
const PTR_MASK: u64 = (1 << PTR_BITS) - 1;

/// A `(pointer, generation)` pair as read from a [`TaggedAtomic`].
///
/// Values are snapshots: the only way to act on one is to pass it back
/// to [`TaggedAtomic::compare_exchange`], which fails if either half
/// changed since the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPtr {
    raw: u64,
}

impl TaggedPtr {
    /// The null pointer with generation 0 (a [`TaggedAtomic`]'s initial
    /// value).
    pub const NULL: TaggedPtr = TaggedPtr { raw: 0 };

    fn pack(ptr: *mut u8, tag: u16) -> TaggedPtr {
        let addr = ptr as usize as u64;
        debug_assert_eq!(addr & !PTR_MASK, 0, "pointer exceeds {PTR_BITS} bits");
        TaggedPtr {
            raw: (u64::from(tag) << PTR_BITS) | (addr & PTR_MASK),
        }
    }

    /// The pointer half.
    #[inline]
    pub fn ptr(self) -> *mut u8 {
        (self.raw & PTR_MASK) as usize as *mut u8
    }

    /// The generation tag half.
    #[inline]
    pub fn tag(self) -> u16 {
        (self.raw >> PTR_BITS) as u16
    }

    /// Whether the pointer half is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw & PTR_MASK == 0
    }
}

/// A generation-counted atomic pointer: the head word of a lock-free
/// Treiber stack.
pub struct TaggedAtomic {
    word: AtomicU64,
}

impl TaggedAtomic {
    /// Creates the atomic holding null with generation 0.
    pub const fn null() -> Self {
        TaggedAtomic {
            word: AtomicU64::new(0),
        }
    }

    /// Loads the current `(pointer, tag)` pair (acquire).
    #[inline]
    pub fn load(&self) -> TaggedPtr {
        probe::emit(ProbeEvent::LineRead {
            line: probe::line_of(self),
        });
        TaggedPtr {
            raw: self.word.load(Ordering::Acquire),
        }
    }

    /// Attempts to replace `current` with `new`, incrementing the
    /// generation tag.
    ///
    /// On success returns the installed pair; on failure returns the
    /// observed pair for the caller's retry. Success is AcqRel: it
    /// publishes the stores the caller made to `new`'s pointee before
    /// the call (a Treiber push's next-link write) and pairs with the
    /// acquire in [`load`](TaggedAtomic::load).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: TaggedPtr,
        new: *mut u8,
    ) -> Result<TaggedPtr, TaggedPtr> {
        probe::emit(ProbeEvent::LineWrite {
            line: probe::line_of(self),
        });
        let next = TaggedPtr::pack(new, current.tag().wrapping_add(1));
        self.word
            .compare_exchange(current.raw, next.raw, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| next)
            .map_err(|raw| TaggedPtr { raw })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicUsize;

    #[test]
    fn pack_round_trips_pointer_and_tag() {
        let mut byte = 7u8;
        let p: *mut u8 = &mut byte;
        let t = TaggedPtr::pack(p, 0xBEEF);
        assert_eq!(t.ptr(), p);
        assert_eq!(t.tag(), 0xBEEF);
        assert!(!t.is_null());
        assert!(TaggedPtr::NULL.is_null());
        assert_eq!(TaggedPtr::NULL.tag(), 0);
    }

    #[test]
    fn successful_exchange_increments_the_tag() {
        let mut byte = 0u8;
        let head = TaggedAtomic::null();
        let seen = head.load();
        assert!(seen.is_null());
        let installed = head.compare_exchange(seen, &mut byte).unwrap();
        assert_eq!(installed.tag(), seen.tag().wrapping_add(1));
        assert_eq!(head.load(), installed);
    }

    #[test]
    fn stale_tag_fails_even_with_matching_pointer() {
        // The ABA scenario: same pointer, different generation.
        let mut byte = 0u8;
        let p: *mut u8 = &mut byte;
        let head = TaggedAtomic::null();
        let stale = head.load();
        head.compare_exchange(stale, p).unwrap(); // tag 1
        let mid = head.load();
        head.compare_exchange(mid, core::ptr::null_mut()).unwrap(); // tag 2
        let back = head.load();
        head.compare_exchange(back, p).unwrap(); // tag 3: same ptr as tag 1
                                                 // A CAS armed with the tag-1 view must fail despite the pointer
                                                 // matching the current head.
        let err = head
            .compare_exchange(TaggedPtr::pack(p, 1), core::ptr::null_mut())
            .unwrap_err();
        assert_eq!(err.ptr(), p);
        assert_eq!(err.tag(), 3);
    }

    #[test]
    fn probe_events_price_load_and_cas() {
        let head = TaggedAtomic::null();
        let ((), ev) = probe::record(|| {
            let cur = head.load();
            let _ = head.compare_exchange(cur, core::ptr::null_mut());
        });
        let line = probe::line_of(&head);
        assert_eq!(
            ev,
            vec![
                ProbeEvent::LineRead { line },
                ProbeEvent::LineWrite { line },
            ]
        );
    }

    /// A full Treiber stack of type-stable nodes under real threads:
    /// every pushed node is popped exactly once, across enough cycles
    /// that unprotected (untagged) CAS would hit ABA splices.
    #[test]
    fn treiber_stack_torture_conserves_nodes() {
        struct Node {
            next: AtomicUsize,
            popped: AtomicUsize,
        }
        const NODES: usize = 8;
        const OPS: usize = 20_000;
        let nodes: Vec<Node> = (0..NODES)
            .map(|_| Node {
                next: AtomicUsize::new(0),
                popped: AtomicUsize::new(0),
            })
            .collect();
        let head = TaggedAtomic::null();
        let push = |node: &Node| {
            let p = node as *const Node as *mut u8;
            loop {
                let cur = head.load();
                node.next.store(cur.ptr() as usize, Ordering::Relaxed);
                if head.compare_exchange(cur, p).is_ok() {
                    break;
                }
            }
        };
        let pop = || -> Option<*const Node> {
            loop {
                let cur = head.load();
                if cur.is_null() {
                    return None;
                }
                // SAFETY: nodes are type-stable for the whole test; a
                // stale read yields a bogus next that the tag CAS
                // rejects.
                let node = unsafe { &*(cur.ptr() as *const Node) };
                let next = node.next.load(Ordering::Relaxed) as *mut u8;
                if head.compare_exchange(cur, next).is_ok() {
                    return Some(node);
                }
            }
        };
        for n in &nodes {
            push(n);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..OPS {
                        if let Some(n) = pop() {
                            // SAFETY: popped exactly by us; counted then
                            // pushed back.
                            let n = unsafe { &*n };
                            n.popped.fetch_add(1, Ordering::Relaxed);
                            push(n);
                        }
                    }
                });
            }
        });
        // Every node is back on the stack exactly once.
        let mut seen = 0;
        while pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, NODES);
        let total: usize = nodes.iter().map(|n| n.popped.load(Ordering::Relaxed)).sum();
        assert!(total > 0, "no pops ever succeeded");
    }
}
