//! Lock-free tagged-pointer atomics for intrusive Treiber stacks.
//!
//! The global layer's chain hand-off is a pure LIFO: a CPU pushes an
//! intact `target`-sized chain, another CPU pops one. A Treiber stack
//! makes both operations a single compare-and-swap on one word — but a
//! bare pointer CAS is unsound for pop: between loading the head `A` and
//! the CAS, `A` can be popped, recycled, and pushed again with a
//! different successor (the ABA problem), and the CAS would splice a
//! stale next pointer into the stack.
//!
//! [`TaggedAtomic`] defeats ABA the classic way (IBM System/370 free-list
//! technique): the head word packs a 48-bit pointer with a 16-bit
//! generation tag, and every successful exchange increments the tag. A
//! pop that raced a full push-pop cycle of the same address then fails
//! its CAS on the tag alone and retries with fresh state. Sixteen bits
//! of generation would need to wrap *exactly* between one thread's load
//! and its CAS — 65 536 complete stack operations inside one
//! load-to-CAS window — for a false match, which the bounded size of the
//! global pool (at most `2 * gbltarget` blocks plus one in-flight chain
//! per CPU) makes unreachable in practice.
//!
//! The primitive emits [`probe`] events ([`ProbeEvent::LineRead`] on
//! load, [`ProbeEvent::LineRmw`] on each CAS or fetch-add attempt) so the
//! discrete-event simulator in `kmem-sim` can price the cache-line
//! traffic of lock-free contention exactly as it prices spinlock
//! hand-offs.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::probe::{self, ProbeEvent};

/// Bits of generation tag packed above the pointer.
pub const TAG_BITS: u32 = 16;
/// Bits of pointer kept; covers the canonical user-space range of every
/// 64-bit target this workspace builds on.
pub const PTR_BITS: u32 = 48;
const PTR_MASK: u64 = (1 << PTR_BITS) - 1;

/// A `(pointer, generation)` pair as read from a [`TaggedAtomic`].
///
/// Values are snapshots: the only way to act on one is to pass it back
/// to [`TaggedAtomic::compare_exchange`], which fails if either half
/// changed since the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPtr {
    raw: u64,
}

impl TaggedPtr {
    /// The null pointer with generation 0 (a [`TaggedAtomic`]'s initial
    /// value).
    pub const NULL: TaggedPtr = TaggedPtr { raw: 0 };

    fn pack(ptr: *mut u8, tag: u16) -> TaggedPtr {
        let addr = ptr as usize as u64;
        debug_assert_eq!(addr & !PTR_MASK, 0, "pointer exceeds {PTR_BITS} bits");
        TaggedPtr {
            raw: (u64::from(tag) << PTR_BITS) | (addr & PTR_MASK),
        }
    }

    fn pack_value(value: u64, tag: u16) -> TaggedPtr {
        debug_assert_eq!(value & !PTR_MASK, 0, "value exceeds {PTR_BITS} bits");
        TaggedPtr {
            raw: (u64::from(tag) << PTR_BITS) | (value & PTR_MASK),
        }
    }

    /// The pointer half.
    #[inline]
    pub fn ptr(self) -> *mut u8 {
        (self.raw & PTR_MASK) as usize as *mut u8
    }

    /// The low 48 bits as a plain value, for [`TaggedAtomic`] words that
    /// carry a packed bitfield (counts, flags) instead of a pointer.
    #[inline]
    pub fn value(self) -> u64 {
        self.raw & PTR_MASK
    }

    /// The generation tag half.
    #[inline]
    pub fn tag(self) -> u16 {
        (self.raw >> PTR_BITS) as u16
    }

    /// Whether the pointer half is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw & PTR_MASK == 0
    }
}

/// A generation-counted atomic pointer: the head word of a lock-free
/// Treiber stack.
pub struct TaggedAtomic {
    word: AtomicU64,
}

impl TaggedAtomic {
    /// Creates the atomic holding null with generation 0.
    pub const fn null() -> Self {
        TaggedAtomic {
            word: AtomicU64::new(0),
        }
    }

    /// Loads the current `(pointer, tag)` pair (acquire).
    #[inline]
    pub fn load(&self) -> TaggedPtr {
        probe::emit(ProbeEvent::LineRead {
            line: probe::line_of(self),
        });
        TaggedPtr {
            raw: self.word.load(Ordering::Acquire),
        }
    }

    /// Attempts to replace `current` with `new`, incrementing the
    /// generation tag.
    ///
    /// On success returns the installed pair; on failure returns the
    /// observed pair for the caller's retry. Success is AcqRel: it
    /// publishes the stores the caller made to `new`'s pointee before
    /// the call (a Treiber push's next-link write) and pairs with the
    /// acquire in [`load`](TaggedAtomic::load).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: TaggedPtr,
        new: *mut u8,
    ) -> Result<TaggedPtr, TaggedPtr> {
        probe::emit(ProbeEvent::LineRmw {
            line: probe::line_of(self),
        });
        let next = TaggedPtr::pack(new, current.tag().wrapping_add(1));
        self.word
            .compare_exchange(current.raw, next.raw, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| next)
            .map_err(|raw| TaggedPtr { raw })
    }

    /// Attempts to replace `current` with the 48-bit `value`, incrementing
    /// the generation tag — [`compare_exchange`] for words that carry a
    /// packed bitfield instead of a pointer.
    ///
    /// [`compare_exchange`]: TaggedAtomic::compare_exchange
    #[inline]
    pub fn compare_exchange_value(
        &self,
        current: TaggedPtr,
        value: u64,
    ) -> Result<TaggedPtr, TaggedPtr> {
        probe::emit(ProbeEvent::LineRmw {
            line: probe::line_of(self),
        });
        let next = TaggedPtr::pack_value(value, current.tag().wrapping_add(1));
        self.word
            .compare_exchange(current.raw, next.raw, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| next)
            .map_err(|raw| TaggedPtr { raw })
    }

    /// Adds `delta` to the 48-bit value half and increments the generation
    /// tag in **one** atomic read-modify-write, returning the *previous*
    /// `(value, tag)` pair.
    ///
    /// This is the fetch-style helper the coalesce-to-page layer's atomic
    /// free counts need: a freeing CPU bumps a page's packed free count
    /// without a CAS loop, while the tag bump keeps every concurrent
    /// [`compare_exchange_value`] honest — any interleaved `fetch_count_add`
    /// changes the tag, so a CAS armed with a pre-add snapshot fails and
    /// re-reads. The caller must guarantee the value half cannot overflow
    /// into the tag bits (page free counts are bounded by blocks-per-page,
    /// far below 2⁴⁸).
    ///
    /// AcqRel: the returned snapshot observes prior writes (a freeing CPU's
    /// block push), and the add publishes the caller's earlier stores.
    ///
    /// [`compare_exchange_value`]: TaggedAtomic::compare_exchange_value
    #[inline]
    pub fn fetch_count_add(&self, delta: u64) -> TaggedPtr {
        probe::emit(ProbeEvent::LineRmw {
            line: probe::line_of(self),
        });
        debug_assert_eq!(delta & !PTR_MASK, 0, "delta exceeds {PTR_BITS} bits");
        let add = (delta & PTR_MASK) | (1 << PTR_BITS);
        TaggedPtr {
            raw: self.word.fetch_add(add, Ordering::AcqRel),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicUsize;

    #[test]
    fn pack_round_trips_pointer_and_tag() {
        let mut byte = 7u8;
        let p: *mut u8 = &mut byte;
        let t = TaggedPtr::pack(p, 0xBEEF);
        assert_eq!(t.ptr(), p);
        assert_eq!(t.tag(), 0xBEEF);
        assert!(!t.is_null());
        assert!(TaggedPtr::NULL.is_null());
        assert_eq!(TaggedPtr::NULL.tag(), 0);
    }

    #[test]
    fn successful_exchange_increments_the_tag() {
        let mut byte = 0u8;
        let head = TaggedAtomic::null();
        let seen = head.load();
        assert!(seen.is_null());
        let installed = head.compare_exchange(seen, &mut byte).unwrap();
        assert_eq!(installed.tag(), seen.tag().wrapping_add(1));
        assert_eq!(head.load(), installed);
    }

    #[test]
    fn stale_tag_fails_even_with_matching_pointer() {
        // The ABA scenario: same pointer, different generation.
        let mut byte = 0u8;
        let p: *mut u8 = &mut byte;
        let head = TaggedAtomic::null();
        let stale = head.load();
        head.compare_exchange(stale, p).unwrap(); // tag 1
        let mid = head.load();
        head.compare_exchange(mid, core::ptr::null_mut()).unwrap(); // tag 2
        let back = head.load();
        head.compare_exchange(back, p).unwrap(); // tag 3: same ptr as tag 1
                                                 // A CAS armed with the tag-1 view must fail despite the pointer
                                                 // matching the current head.
        let err = head
            .compare_exchange(TaggedPtr::pack(p, 1), core::ptr::null_mut())
            .unwrap_err();
        assert_eq!(err.ptr(), p);
        assert_eq!(err.tag(), 3);
    }

    #[test]
    fn probe_events_price_load_and_cas() {
        let head = TaggedAtomic::null();
        let ((), ev) = probe::record(|| {
            let cur = head.load();
            let _ = head.compare_exchange(cur, core::ptr::null_mut());
        });
        let line = probe::line_of(&head);
        assert_eq!(
            ev,
            vec![ProbeEvent::LineRead { line }, ProbeEvent::LineRmw { line },]
        );
    }

    #[test]
    fn value_words_round_trip_and_tag_on_exchange() {
        let word = TaggedAtomic::null();
        let cur = word.load();
        assert_eq!(cur.value(), 0);
        let installed = word.compare_exchange_value(cur, 0x1234_5678).unwrap();
        assert_eq!(installed.value(), 0x1234_5678);
        assert_eq!(installed.tag(), 1);
        // Stale snapshot fails on the tag even with a matching value.
        assert!(word.compare_exchange_value(cur, 0x1234_5678).is_err());
    }

    #[test]
    fn fetch_count_add_returns_previous_and_bumps_tag() {
        let word = TaggedAtomic::null();
        let before = word.fetch_count_add(3);
        assert_eq!(before.value(), 0);
        assert_eq!(before.tag(), 0);
        let after = word.load();
        assert_eq!(after.value(), 3);
        assert_eq!(after.tag(), 1);
        word.fetch_count_add(1 << 16); // a packed upper bitfield
        let after = word.load();
        assert_eq!(after.value(), 3 | (1 << 16));
        assert_eq!(after.tag(), 2);
    }

    #[test]
    fn fetch_count_add_defeats_cas_over_unchanged_value() {
        // The ABA shape for packed counts: value returns to its old bits
        // but the tag has moved, so a stale CAS must fail.
        let word = TaggedAtomic::null();
        let snap = word.load();
        word.fetch_count_add(1);
        let up = word.load();
        // Subtract via CAS (the reserve path): value back to 0.
        word.compare_exchange_value(up, 0).unwrap();
        assert_eq!(word.load().value(), snap.value());
        let err = word.compare_exchange_value(snap, 7).unwrap_err();
        assert_eq!(err.tag(), 2, "two ops moved the generation twice");
    }

    #[test]
    fn fetch_count_add_is_one_priced_rmw() {
        let word = TaggedAtomic::null();
        let ((), ev) = probe::record(|| {
            word.fetch_count_add(1);
        });
        let line = probe::line_of(&word);
        assert_eq!(ev, vec![ProbeEvent::LineRmw { line }]);
    }

    #[test]
    fn concurrent_count_adds_never_lose_increments() {
        let word = TaggedAtomic::null();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        word.fetch_count_add(1);
                    }
                });
            }
        });
        let end = word.load();
        assert_eq!(end.value(), 40_000);
        assert_eq!(end.tag(), (40_000u64 % (1 << TAG_BITS)) as u16);
    }

    /// A full Treiber stack of type-stable nodes under real threads:
    /// every pushed node is popped exactly once, across enough cycles
    /// that unprotected (untagged) CAS would hit ABA splices.
    #[test]
    fn treiber_stack_torture_conserves_nodes() {
        struct Node {
            next: AtomicUsize,
            popped: AtomicUsize,
        }
        const NODES: usize = 8;
        const OPS: usize = 20_000;
        let nodes: Vec<Node> = (0..NODES)
            .map(|_| Node {
                next: AtomicUsize::new(0),
                popped: AtomicUsize::new(0),
            })
            .collect();
        let head = TaggedAtomic::null();
        let push = |node: &Node| {
            let p = node as *const Node as *mut u8;
            loop {
                let cur = head.load();
                node.next.store(cur.ptr() as usize, Ordering::Relaxed);
                if head.compare_exchange(cur, p).is_ok() {
                    break;
                }
            }
        };
        let pop = || -> Option<*const Node> {
            loop {
                let cur = head.load();
                if cur.is_null() {
                    return None;
                }
                // SAFETY: nodes are type-stable for the whole test; a
                // stale read yields a bogus next that the tag CAS
                // rejects.
                let node = unsafe { &*(cur.ptr() as *const Node) };
                let next = node.next.load(Ordering::Relaxed) as *mut u8;
                if head.compare_exchange(cur, next).is_ok() {
                    return Some(node);
                }
            }
        };
        for n in &nodes {
            push(n);
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..OPS {
                        if let Some(n) = pop() {
                            // SAFETY: popped exactly by us; counted then
                            // pushed back.
                            let n = unsafe { &*n };
                            n.popped.fetch_add(1, Ordering::Relaxed);
                            push(n);
                        }
                    }
                });
            }
        });
        // Every node is back on the stack exactly once.
        let mut seen = 0;
        while pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, NODES);
        let total: usize = nodes.iter().map(|n| n.popped.load(Ordering::Relaxed)).sum();
        assert!(total > 0, "no pops ever succeeded");
    }
}
