//! Bounded, deduplicated, wait-free MPSC mailbox for maintenance work.
//!
//! Hot CPUs that cross a slow-path threshold (a global pool over its
//! `2 * gbltarget` bound, an odd-length flush chain that needs regrouping,
//! a pressure-ladder rung) do not take the locked slow path inline.
//! Instead they *post* a small work descriptor here and keep running; a
//! maintenance core (or an explicit test pump) drains the mailbox and owns
//! the locked path alone. The posting side is the production fast path, so
//! it must be wait-free and cheap; the draining side is one background
//! thread, so it can be plain.
//!
//! Three properties carry the design:
//!
//! * **Deduplication.** Every work item maps to a small integer *key*
//!   (site × shard). A `pending` bit per key is claimed with one
//!   `AtomicBool::swap` before touching the ring; a storm of identical
//!   threshold crossings enqueues one unit of work and counts the rest as
//!   `deduped`. The consumer clears the bit *at pop, before running the
//!   work*, so a crossing that races the drain re-enqueues rather than
//!   getting lost.
//! * **Wait-free posting.** The ring is a Vyukov-style bounded MPSC queue:
//!   a producer takes a ticket with one [`TaggedAtomic::fetch_count_add`]
//!   (the only RMW on a shared line the post path pays — the probe layer
//!   prices exactly one [`ProbeEvent::LineRmw`]), then publishes into its
//!   slot with plain stores. The classic Vyukov queue makes producers wait
//!   when the ring is full; here the dedup bits make that wait *provably
//!   vacuous*: every in-flight entry holds a distinct claimed key, so at
//!   most `keys` entries exist between `tail` and a fresh ticket, and the
//!   ring is sized to `2 * keys` slots — the slot a producer is assigned
//!   has always been recycled already.
//! * **Single consumer, bounded drains.** A `draining` try-flag
//!   serializes drains; a losing caller returns immediately with zero
//!   items instead of spinning. Each drain pops only the items published
//!   before it began (its entry *epoch*), so a handler that provokes
//!   fresh posts hands them to the next drain instead of pinning this
//!   one. The consumer walks `tail` with plain loads/stores — the drain
//!   side costs no priced shared-line RMWs at all.
//!
//! Counters follow the convention the maintenance layer asserts at
//! quiescence: `posted` counts every post *attempt*, `deduped` the
//! suppressed ones, `drained` the pops — so an empty mailbox satisfies
//! `drained == posted - deduped`.

use core::hint::spin_loop;
use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::atomics::TaggedAtomic;
use crate::counter::EventCounter;

/// Payload bits carried per item (the low 48 bits of the slot word; the
/// high 16 bits carry the key so the consumer can clear its pending bit).
pub const PAYLOAD_BITS: u32 = 48;
const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;

struct Slot {
    /// Vyukov sequence word: `ticket` when free for the producer holding
    /// `ticket`, `ticket + 1` when published, `ticket + capacity` after
    /// the consumer recycles it for the next lap.
    seq: AtomicU64,
    /// `(key << 48) | payload`, valid while `seq == ticket + 1`.
    value: AtomicU64,
}

/// The bounded deduplicated MPSC mailbox.
pub struct Mailbox {
    slots: Box<[Slot]>,
    mask: u64,
    /// Producer ticket counter (value half) — the one shared line the
    /// wait-free post path hits with an RMW.
    head: TaggedAtomic,
    /// Consumer cursor; only the drain holder writes it.
    tail: AtomicU64,
    /// One claim bit per dedup key.
    pending: Box<[AtomicBool]>,
    /// Single-consumer try-flag.
    draining: AtomicBool,
    posted: EventCounter,
    deduped: EventCounter,
    drained: EventCounter,
}

impl Mailbox {
    /// Creates a mailbox with `keys` dedup keys and `2 * keys` (rounded up
    /// to a power of two) ring slots.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or exceeds `u16::MAX + 1` (keys ride in
    /// the high 16 bits of the slot word).
    pub fn new(keys: usize) -> Self {
        assert!(keys >= 1, "mailbox needs at least one key");
        assert!(keys <= 1 << 16, "keys must fit in 16 bits");
        let capacity = (2 * keys).next_power_of_two();
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: AtomicU64::new(0),
            })
            .collect();
        let pending = (0..keys).map(|_| AtomicBool::new(false)).collect();
        Mailbox {
            slots,
            mask: (capacity - 1) as u64,
            head: TaggedAtomic::null(),
            tail: AtomicU64::new(0),
            pending,
            draining: AtomicBool::new(false),
            posted: EventCounter::new(),
            deduped: EventCounter::new(),
            drained: EventCounter::new(),
        }
    }

    /// Number of dedup keys.
    pub fn keys(&self) -> usize {
        self.pending.len()
    }

    /// Ring capacity in slots (always `>= 2 * keys`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Posts work item `key` with a 48-bit `payload`. Wait-free: one
    /// shared-line RMW (the ticket) when the item enqueues, none when it
    /// deduplicates against an already-pending copy.
    ///
    /// Returns `true` if the item was enqueued, `false` if an identical
    /// key was already pending (counted as `deduped`).
    ///
    /// # Panics
    ///
    /// Debug-asserts `key < self.keys()` and `payload` fits in 48 bits.
    pub fn post(&self, key: usize, payload: u64) -> bool {
        debug_assert!(key < self.pending.len(), "key out of range");
        debug_assert_eq!(payload & !PAYLOAD_MASK, 0, "payload exceeds 48 bits");
        self.posted.inc();
        if self.pending[key].swap(true, Ordering::AcqRel) {
            self.deduped.inc();
            return false;
        }
        let ticket = self.head.fetch_count_add(1).value();
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Vyukov hand-off: wait for the consumer to have recycled this
        // slot's previous lap. Vacuous in practice — in-flight entries
        // hold distinct pending keys, so at most `keys <= capacity / 2`
        // tickets are ever outstanding and the slot is always ready.
        while slot.seq.load(Ordering::Acquire) != ticket {
            spin_loop();
        }
        slot.value
            .store(((key as u64) << PAYLOAD_BITS) | payload, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
        true
    }

    /// Drains the items published before the call began, invoking
    /// `work(key, payload)` for each. Single-consumer: if another drain is
    /// in progress, returns 0 immediately.
    ///
    /// The pending bit for a key clears *before* `work` runs, so a post
    /// that races the handler re-enqueues instead of being lost. Such a
    /// re-post lands *behind* this drain's epoch boundary and waits for
    /// the next call — each drain is bounded by the backlog at entry, so
    /// a handler that provokes fresh posts can never pin the consumer in
    /// an endless pop loop.
    pub fn try_drain(&self, mut work: impl FnMut(usize, u64)) -> usize {
        if self.draining.swap(true, Ordering::Acquire) {
            return 0;
        }
        let epoch = self.head.load().value();
        let capacity = self.slots.len() as u64;
        let mut n = 0;
        loop {
            let t = self.tail.load(Ordering::Relaxed);
            let slot = &self.slots[(t & self.mask) as usize];
            if t == epoch || slot.seq.load(Ordering::Acquire) != t + 1 {
                break;
            }
            let word = slot.value.load(Ordering::Relaxed);
            // Recycle the slot for lap `t + capacity`, then advance.
            slot.seq.store(t + capacity, Ordering::Release);
            self.tail.store(t + 1, Ordering::Relaxed);
            let key = (word >> PAYLOAD_BITS) as usize;
            let payload = word & PAYLOAD_MASK;
            self.pending[key].store(false, Ordering::Release);
            self.drained.inc();
            n += 1;
            work(key, payload);
        }
        self.draining.store(false, Ordering::Release);
        n
    }

    /// Published-but-undrained items (approximate under concurrency).
    pub fn backlog(&self) -> u64 {
        let head = self.head.load().value();
        let tail = self.tail.load(Ordering::Acquire);
        head.saturating_sub(tail)
    }

    /// Whether the mailbox is quiescent-empty.
    pub fn is_empty(&self) -> bool {
        self.backlog() == 0
    }

    /// Post attempts (enqueued + deduplicated).
    pub fn posted(&self) -> u64 {
        self.posted.get()
    }

    /// Posts suppressed because the key was already pending.
    pub fn deduped(&self) -> u64 {
        self.deduped.get()
    }

    /// Items popped by drains. At quiescence
    /// `drained == posted - deduped`.
    pub fn drained(&self) -> u64 {
        self.drained.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{self, ProbeEvent};

    #[test]
    fn capacity_is_twice_keys_rounded_up() {
        assert_eq!(Mailbox::new(1).capacity(), 2);
        assert_eq!(Mailbox::new(3).capacity(), 8);
        assert_eq!(Mailbox::new(8).capacity(), 16);
        assert_eq!(Mailbox::new(181).capacity(), 512);
    }

    #[test]
    fn posts_drain_in_fifo_order_with_payloads() {
        let mb = Mailbox::new(4);
        assert!(mb.post(2, 0xAA));
        assert!(mb.post(0, 0xBB));
        assert!(mb.post(3, 0xCC));
        let mut seen = Vec::new();
        let n = mb.try_drain(|key, payload| seen.push((key, payload)));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(2, 0xAA), (0, 0xBB), (3, 0xCC)]);
        assert!(mb.is_empty());
        assert_eq!((mb.posted(), mb.deduped(), mb.drained()), (3, 0, 3));
    }

    #[test]
    fn duplicate_keys_dedupe_until_drained() {
        let mb = Mailbox::new(2);
        assert!(mb.post(1, 7));
        assert!(!mb.post(1, 7));
        assert!(!mb.post(1, 9));
        assert_eq!((mb.posted(), mb.deduped()), (3, 2));
        let mut seen = Vec::new();
        mb.try_drain(|k, p| seen.push((k, p)));
        assert_eq!(seen, vec![(1, 7)], "one unit of work for the storm");
        // Once drained, the key is postable again.
        assert!(mb.post(1, 8));
        assert_eq!(mb.try_drain(|_, _| {}), 1);
        assert_eq!(mb.drained(), mb.posted() - mb.deduped());
    }

    #[test]
    fn ring_wraps_across_many_laps() {
        let mb = Mailbox::new(2); // capacity 4
        for lap in 0..100u64 {
            assert!(mb.post(0, lap));
            assert!(mb.post(1, lap));
            let mut seen = Vec::new();
            mb.try_drain(|k, p| seen.push((k, p)));
            assert_eq!(seen, vec![(0, lap), (1, lap)]);
        }
        assert!(mb.is_empty());
        assert_eq!(mb.drained(), 200);
    }

    #[test]
    fn pending_clears_before_work_runs_so_races_reenqueue() {
        let mb = Mailbox::new(1);
        assert!(mb.post(0, 1));
        let mut reposted = false;
        let n = mb.try_drain(|_, _| {
            // A threshold crossing that fires while the handler runs must
            // enqueue a fresh item, not vanish into the old pending bit.
            reposted = mb.post(0, 2);
        });
        // The re-post lands behind the drain's epoch boundary: this drain
        // stays bounded at one item instead of chasing its own tail.
        assert_eq!(n, 1, "drain must stop at its entry epoch");
        assert!(reposted, "post during drain handler was deduped away");
        let mut seen = Vec::new();
        mb.try_drain(|k, p| seen.push((k, p)));
        assert_eq!(seen, vec![(0, 2)]);
    }

    #[test]
    fn enqueueing_post_is_one_priced_line_rmw() {
        let mb = Mailbox::new(4);
        let ((), ev) = probe::record(|| {
            assert!(mb.post(1, 5));
        });
        let rmws = ev
            .iter()
            .filter(|e| matches!(e, ProbeEvent::LineRmw { .. }))
            .count();
        assert_eq!(rmws, 1, "post must cost exactly one shared-line RMW");
        assert!(!ev
            .iter()
            .any(|e| matches!(e, ProbeEvent::LockAcquire { .. })));
        // A deduplicated post touches no priced shared line at all.
        let ((), ev) = probe::record(|| {
            assert!(!mb.post(1, 5));
        });
        assert!(ev.is_empty(), "dedup path must be free of priced traffic");
    }

    #[test]
    fn concurrent_producers_conserve_work_items() {
        const PRODUCERS: usize = 4;
        const OPS: usize = 20_000;
        const KEYS: usize = 8;
        let mb = Mailbox::new(KEYS);
        let executed = EventCounter::new();
        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let mb = &mb;
                s.spawn(move || {
                    let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for _ in 0..OPS {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        mb.post((x % KEYS as u64) as usize, x & 0xFFFF);
                    }
                });
            }
            let mb = &mb;
            let executed = &executed;
            s.spawn(move || {
                for _ in 0..2_000 {
                    mb.try_drain(|_, _| executed.inc());
                    std::hint::spin_loop();
                }
            });
        });
        // Quiescent sweep, then the conservation identity must be exact.
        mb.try_drain(|_, _| executed.inc());
        assert!(mb.is_empty());
        assert_eq!(mb.drained(), mb.posted() - mb.deduped());
        assert_eq!(executed.get(), mb.drained());
        assert_eq!(mb.posted(), (PRODUCERS * OPS) as u64);
    }

    #[test]
    fn concurrent_drain_attempts_do_not_double_pop() {
        let mb = Mailbox::new(4);
        let popped = EventCounter::new();
        for round in 0..200u64 {
            for k in 0..4 {
                mb.post(k, round);
            }
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let mb = &mb;
                    let popped = &popped;
                    s.spawn(move || {
                        mb.try_drain(|_, _| popped.inc());
                    });
                }
            });
            mb.try_drain(|_, _| popped.inc());
            assert!(mb.is_empty());
        }
        assert_eq!(popped.get(), 800);
        assert_eq!(mb.drained(), 800);
    }
}
