//! The work-stealing overflow path: cross-shard conservation and the
//! `global.steal` failpoint.
//!
//! A sharded global layer introduces one new way to lose blocks — a chain
//! in flight between a victim shard and a thief CPU — and one new way to
//! wedge — a refill that can neither steal nor reach the page layer.
//! These tests pin both down: steals move whole chains without breaking
//! per-class conservation, and an injected steal failure routes the
//! refill to the page layer instead of failing the allocation.

use std::ptr::NonNull;

use kmem::faults::{FailPolicy, GLOBAL_STEAL};
use kmem::verify::{verify_arena, verify_conservation, verify_empty};
use kmem::{Faults, HardenedConfig, KmemArena, KmemConfig};
use kmem_testkit::{run_torture, TortureConfig};
use kmem_vm::SpaceConfig;

const SIZE: usize = 256;

/// Registers one handle per CPU, in registration order; callers pick the
/// node they want through `handle.node()`.
fn handles(arena: &KmemArena, ncpus: usize) -> Vec<kmem::CpuHandle> {
    (0..ncpus).map(|_| arena.register_cpu().unwrap()).collect()
}

/// Per-class user-held counts for [`verify_conservation`]: `held` blocks
/// of the single class `SIZE`, zero elsewhere.
fn held_counts(arena: &KmemArena, held: usize) -> Vec<usize> {
    let snap = arena.snapshot();
    snap.classes
        .iter()
        .map(|c| if c.size == SIZE { held } else { 0 })
        .collect()
}

/// Deterministic producer/consumer flow across the node boundary: node 1
/// stocks its shard with freed blocks, node 0 allocates with an empty
/// local shard and must steal. Conservation holds with the stolen chain
/// split between the thief's cache and the caller's hands.
#[test]
fn steals_move_chains_without_losing_blocks() {
    let arena = KmemArena::new(KmemConfig::new(4, SpaceConfig::new(32 << 20)).nodes(2)).unwrap();
    let cpus = handles(&arena, 4);
    let on_node = |n: usize| {
        cpus.iter()
            .find(|c| c.node().index() == n)
            .expect("block mapping places CPUs on both nodes")
    };

    // Node 1 produces: allocate a burst, free it all, flush. The frees
    // overflow the per-CPU cache into node 1's shard (the overflow past
    // the shard bound spills to the shared page layer — also fine).
    let producer = on_node(1);
    let mut blocks: Vec<NonNull<u8>> = (0..400)
        .map(|_| producer.alloc(SIZE).expect("warm pool"))
        .collect();
    for p in blocks.drain(..) {
        // SAFETY: allocated just above, freed exactly once.
        unsafe { producer.free_sized(p, SIZE) };
    }
    producer.flush();
    let stocked = arena.snapshot();
    assert!(
        stocked.nodes[1].shard_blocks > 0,
        "producer flush must stock node 1's shard: {stocked:?}"
    );
    assert_eq!(stocked.nodes[0].stolen_refills, 0);

    // Node 0 consumes: its cache and shard are both empty, so the first
    // refill must steal a whole chain from node 1.
    let thief = on_node(0);
    let held: Vec<NonNull<u8>> = (0..32)
        .map(|_| thief.alloc(SIZE).expect("steal or page refill"))
        .collect();
    let after = arena.snapshot();
    assert!(
        after.nodes[0].stolen_refills > 0,
        "node 0 refilled without stealing: {after:?}"
    );
    assert!(
        after.nodes[1].shard_blocks < stocked.nodes[1].shard_blocks,
        "the victim shard did not shrink"
    );

    // Quiescent cross-shard conservation: every block is in exactly one
    // of page layer / some shard / some cache / the caller's hands.
    verify_arena(&arena);
    verify_conservation(&arena, &held_counts(&arena, held.len()));

    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { thief.free_sized(p, SIZE) };
    }
    for cpu in &cpus {
        cpu.flush();
    }
    arena.reclaim();
    verify_empty(&arena);
}

/// An injected `global.steal` failure must route the refill to the page
/// layer — the allocation still succeeds, nothing is stolen, nothing is
/// lost — and stealing resumes once the site is disarmed.
#[test]
fn steal_failpoint_falls_through_to_the_page_layer() {
    let mut cfg = KmemConfig::new(4, SpaceConfig::new(32 << 20)).nodes(2);
    cfg.faults = Faults::with_plan();
    let arena = KmemArena::new(cfg).unwrap();
    let plan = arena.faults().plan().unwrap().clone();
    let cpus = handles(&arena, 4);
    let on_node = |n: usize| {
        cpus.iter()
            .find(|c| c.node().index() == n)
            .expect("block mapping places CPUs on both nodes")
    };

    // Stock node 1's shard as in the steal test.
    let producer = on_node(1);
    let mut blocks: Vec<NonNull<u8>> = (0..400)
        .map(|_| producer.alloc(SIZE).expect("warm pool"))
        .collect();
    for p in blocks.drain(..) {
        // SAFETY: allocated just above, freed exactly once.
        unsafe { producer.free_sized(p, SIZE) };
    }
    producer.flush();
    let stocked = arena.snapshot();
    let victim_before = stocked.nodes[1].shard_blocks;
    assert!(victim_before > 0, "shard must be stocked: {stocked:?}");

    // Every steal attempt fails: the refill must come from the page
    // layer instead, and the allocation must still succeed.
    plan.set(GLOBAL_STEAL, FailPolicy::EveryNth(1));
    let thief = on_node(0);
    let held: Vec<NonNull<u8>> = (0..32)
        .map(|_| thief.alloc(SIZE).expect("page layer must serve the refill"))
        .collect();
    let faulted = arena.snapshot();
    assert_eq!(
        faulted.nodes[0].stolen_refills, 0,
        "a steal went through despite the failpoint: {faulted:?}"
    );
    assert_eq!(
        faulted.nodes[1].shard_blocks, victim_before,
        "the victim shard changed under a failed steal"
    );
    let fired = plan
        .site_stats()
        .iter()
        .find(|s| s.site == GLOBAL_STEAL)
        .map(|s| s.fired)
        .unwrap_or(0);
    assert!(fired > 0, "the steal site never fired");
    // No block was lost on the forced detour.
    verify_arena(&arena);
    verify_conservation(&arena, &held_counts(&arena, held.len()));

    // Disarm: service resumes — the next starved refill steals again.
    plan.set(GLOBAL_STEAL, FailPolicy::Off);
    let more: Vec<NonNull<u8>> = (0..64)
        .map(|_| thief.alloc(SIZE).expect("steal resumes"))
        .collect();
    let resumed = arena.snapshot();
    assert!(
        resumed.nodes[0].stolen_refills > 0,
        "stealing never resumed after disarm: {resumed:?}"
    );

    for p in held.into_iter().chain(more) {
        // SAFETY: allocated above, freed exactly once.
        unsafe { thief.free_sized(p, SIZE) };
    }
    for cpu in &cpus {
        cpu.flush();
    }
    arena.reclaim();
    verify_empty(&arena);
}

/// A seeded multi-threaded torture round on a 4-node arena: cross-thread
/// frees drain shards unevenly, so the run must exercise real steals, and
/// the checkpoint walkers plus the final drain prove cross-shard
/// conservation at quiescence.
#[test]
fn four_node_torture_round_is_conserving() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 50_000,
        // ≥ 5 phases so the fault-mode policy rotation cycles every
        // site through every shape (an alloc-path site stuck on
        // EveryNth(1) for a whole phase would starve the mix).
        phases: 6,
        seed: 0x4_2042,
        ..TortureConfig::standard()
    };
    let mut kcfg = KmemConfig::new(cfg.threads, SpaceConfig::new(128 << 20)).nodes(4);
    // Carry a fault plan so `KMEM_TORTURE_FAULTS=1` (the CI contention
    // round) arms every site — including `global.steal` — under the mix.
    kcfg.faults = Faults::with_plan();
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);
    assert_eq!(report.ops, (cfg.threads * cfg.ops_per_thread) as u64);
    assert!(report.allocs > 1_000, "too few allocs: {report:?}");

    let snap = arena.snapshot();
    assert_eq!(snap.nodes.len(), 4);
    let stolen: u64 = snap.nodes.iter().map(|n| n.stolen_refills).sum();
    let local: u64 = snap.nodes.iter().map(|n| n.local_refills).sum();
    if !cfg.faults_requested() {
        // The clean run must exercise the cross-node machinery for
        // real; with injection armed, fault storms may legitimately
        // suppress the hand-off traffic in some phases.
        assert!(report.cross_frees > 1_000, "no cross-node flow: {report:?}");
        assert!(stolen > 0, "4-node torture never stole: {snap:?}");
    }
    assert!(local > 0, "no refill ever hit a local shard: {snap:?}");

    arena.reclaim();
    verify_empty(&arena);
}

/// A seeded 2-node torture round with every hardened defense armed: a
/// stolen chain crosses shards *encoded* (both shards share the arena's
/// link key), so real steals must happen and decode cleanly — no false
/// freelist-link detections, conservation at every checkpoint, and an
/// empty arena at the end.
#[test]
fn two_node_hardened_torture_round_steals_encoded_chains() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 25_000,
        phases: 3,
        seed: 0x4e55_4d41_4852_4431, // "NUMAHRD1"
        hardened: true,
        ..TortureConfig::standard()
    };
    let kcfg = KmemConfig::new(cfg.threads, SpaceConfig::new(128 << 20))
        .nodes(2)
        .hardened(HardenedConfig::full(cfg.seed));
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);
    assert_eq!(report.ops, (cfg.threads * cfg.ops_per_thread) as u64);
    assert!(report.cross_frees > 500, "no cross-node flow: {report:?}");

    let snap = arena.snapshot();
    assert_eq!(snap.nodes.len(), 2);
    let stolen: u64 = snap.nodes.iter().map(|n| n.stolen_refills).sum();
    assert!(stolen > 0, "hardened 2-node round never stole: {snap:?}");
    assert_eq!(
        snap.corruption_reports, 0,
        "encoded steal traffic tripped a detector: {snap:?}"
    );

    arena.reclaim();
    verify_empty(&arena);
}
