//! Focused contention regression for the lock-free global layer.
//!
//! The Treiber-stack rework left exactly one lock in the global pool: the
//! bucket list behind the slow path. These tests hammer the seam between
//! the two — concurrent `put_odd` storms feeding the locked bucket while
//! `get_chain` readers race the lock-free stack — and then assert the
//! paper's regrouping contract: every block is conserved, and the bucket
//! regroups odd scraps back into exactly-`target`-sized chains.
//!
//! The thread count honours `KMEM_GLOBAL_THREADS` (the CI sweep drives
//! 2/4/8), and `KMEM_TORTURE_FAULTS=1` arms the `global.get` failpoint so
//! injected misses interleave with real contention.

use std::sync::atomic::{AtomicUsize, Ordering};

use kmem::chain::Chain;
use kmem::global::GlobalPool;
use kmem::{faults, FailPolicy, Faults};

/// Backing store of fake blocks with stable addresses.
#[expect(clippy::vec_box)]
struct Blocks {
    store: Vec<Box<[u8; 32]>>,
    next: usize,
}

impl Blocks {
    fn new(n: usize) -> Self {
        Blocks {
            store: (0..n).map(|_| Box::new([0u8; 32])).collect(),
            next: 0,
        }
    }

    fn chain(&mut self, n: usize) -> Chain {
        let mut c = Chain::new();
        for _ in 0..n {
            // SAFETY: fake blocks are owned and disjoint.
            unsafe { c.push(self.store[self.next].as_mut_ptr()) };
            self.next += 1;
        }
        c
    }
}

fn discard(mut c: Chain) -> usize {
    let mut n = 0;
    while c.pop().is_some() {
        n += 1;
    }
    n
}

fn env_threads() -> usize {
    std::env::var("KMEM_GLOBAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| (1..=64).contains(&t))
        .unwrap_or(4)
}

fn env_faults() -> bool {
    std::env::var("KMEM_TORTURE_FAULTS").is_ok_and(|v| v == "1")
}

/// The storm: every thread splits exact chains into odd scraps and feeds
/// them back through `put_odd`, while also popping via `get_chain` — the
/// locked bucket regroups under fire from the lock-free stack. Afterwards
/// the pool must hold every block it was seeded with (minus counted
/// spills), grouped back into exact `target`-sized chains.
#[test]
fn put_odd_storm_regroups_exactly_and_conserves_blocks() {
    const TARGET: usize = 4;
    const OPS: usize = 10_000;
    let threads = env_threads();
    // Capacity comfortably above the seed so the storm itself never
    // spills; spills are still counted, not assumed absent.
    let seed_chains = threads * 4;
    let total_blocks = seed_chains * TARGET;
    let gbltarget = total_blocks; // bound 2x the seed

    let faults_handle = if env_faults() {
        Faults::with_plan()
    } else {
        Faults::none()
    };
    let pool = GlobalPool::new_with_faults(TARGET, gbltarget, faults_handle.clone());
    let mut blocks = Blocks::new(total_blocks);
    for _ in 0..seed_chains {
        assert!(pool.put_chain(blocks.chain(TARGET)).is_none());
    }
    if let Some(plan) = faults_handle.plan() {
        // Sparse injected misses: real traffic still dominates.
        plan.set(faults::GLOBAL_GET, FailPolicy::EveryNth(7));
    }

    let spilled = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for round in 0..OPS {
                    let Some(mut c) = pool.get_chain() else {
                        continue;
                    };
                    if round % 2 == 0 && c.len() > 1 {
                        // Tear the chain into two odd scraps and feed the
                        // bucket; the regroup path must rebuild them.
                        let cut = c.split_first(1);
                        for odd in [cut, c] {
                            if let Some(sp) = pool.put_odd(odd) {
                                spilled.fetch_add(discard(sp), Ordering::Relaxed);
                            }
                        }
                    } else {
                        // Exact-length round trip: lock-free on both ends
                        // (short chains from bucket serves go odd).
                        let sp = if c.len() == TARGET {
                            pool.put_chain(c)
                        } else {
                            pool.put_odd(c)
                        };
                        if let Some(sp) = sp {
                            spilled.fetch_add(discard(sp), Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    if let Some(plan) = faults_handle.plan() {
        let stats = plan.site_stats();
        let s = stats
            .iter()
            .find(|s| s.site == faults::GLOBAL_GET)
            .expect("armed site must have been consulted");
        assert!(s.fired > 0, "faults armed but never fired: {s:?}");
        plan.set(faults::GLOBAL_GET, FailPolicy::Off);
    }

    // Conservation: nothing lost, nothing minted.
    let spilled = spilled.load(Ordering::Relaxed);
    assert_eq!(
        pool.len() + spilled,
        total_blocks,
        "blocks leaked or duplicated under the storm"
    );

    // Regrouping: quiescent drain yields exact `target`-sized chains, with
    // at most one short straggler (the bucket's final `< target` scraps).
    let mut drained = 0;
    let mut shorts = 0;
    while let Some(c) = pool.get_chain() {
        if c.len() != TARGET {
            shorts += 1;
            assert!(c.len() < TARGET, "overlong chain escaped the stack");
        }
        drained += discard(c);
    }
    assert_eq!(drained + spilled, total_blocks);
    assert!(
        shorts <= 1,
        "{shorts} short chains drained — bucket failed to regroup"
    );
    assert!(pool.is_empty());

    // Quiescent counter partition across the whole storm.
    let st = pool.stats();
    assert_eq!(st.get_fast.get() + st.get_slow.get(), st.get());
    assert_eq!(st.put_fast.get() + st.put_slow.get(), st.put());
    assert!(st.put_odd.get() > 0, "storm never exercised put_odd");
}

/// Pure exact-chain ping-pong across threads — the CPU-to-CPU recycling
/// pattern the lock-free stack exists for. Essentially every put and get
/// of a seeded chain rides the CAS fast path; the slow path is entered
/// only for terminal misses (empty pool), injected faults, and the rare
/// put whose bound estimate fell back to a torn (over-stated) sweep.
#[test]
fn exact_chain_ping_pong_stays_on_the_fast_path() {
    const TARGET: usize = 8;
    const OPS: usize = 10_000;
    let threads = env_threads();
    let seed_chains = threads * 2;
    let total_blocks = seed_chains * TARGET;

    let pool = GlobalPool::new(TARGET, total_blocks);
    let mut blocks = Blocks::new(total_blocks);
    for _ in 0..seed_chains {
        assert!(pool.put_chain(blocks.chain(TARGET)).is_none());
    }

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..OPS {
                    if let Some(c) = pool.get_chain() {
                        assert_eq!(c.len(), TARGET, "stack chains must stay exact");
                        assert!(pool.put_chain(c).is_none(), "in-bound put spilled");
                    }
                }
            });
        }
    });

    assert_eq!(pool.len(), total_blocks, "ping-pong lost blocks");
    let st = pool.stats();
    // Chains outnumber threads, so gets can only miss transiently, and
    // successful round trips ride the CAS fast path on both sides. The
    // derived bound estimate may route a handful of puts to the slow
    // path when its seqlock sweep falls back under a put storm
    // (DESIGN.md §9) — tolerate a sliver, not a trend.
    let slack = threads as u64;
    let slow_puts = st.put_slow.get();
    assert!(
        slow_puts <= slack,
        "{slow_puts} of {} puts took the slow path",
        st.put()
    );
    // A slow put re-enters the stack under the lock, where a concurrent
    // get may legitimately find it — bound the excursions the same way.
    let slow_hits = st.get_chain_hits() - st.get_fast.get();
    assert!(
        slow_hits <= slack,
        "{slow_hits} ready-chain gets needed the lock"
    );
    assert_eq!(st.get_bucket_hits.get(), 0);
    discard(pool.drain_all());
}
