//! Misuse detection: the guards must catch API abuse loudly instead of
//! corrupting the arena.
//!
//! Two tiers. In the *default* profile the cookie-validation and
//! poisoning guards are `debug_assert!`-based (they must cost nothing in
//! release kernels), so those tests are gated on `debug_assertions`. In
//! the *hardened* profile the same abuses are detected in every build —
//! the second half of this file runs the release-capable versions, gated
//! on the profile rather than the compiler. The dope-vector
//! foreign-pointer guard is structural and fires in every build and
//! every profile.

use kmem::{HardenedConfig, KmemArena, KmemConfig};

fn arena() -> KmemArena {
    KmemArena::new(KmemConfig::small()).unwrap()
}

/// A hardened arena that panics on detection, for `should_panic` tests
/// that must behave identically in debug and release builds.
fn hardened_arena() -> KmemArena {
    KmemArena::new(KmemConfig::small().hardened(HardenedConfig::full(0x4d49_5355_5345).panicking()))
        .unwrap()
}

/// A cookie resolved against one arena must be rejected by another:
/// the cookie embeds the issuing arena's id.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "different arena")]
fn cross_arena_cookie_alloc_is_caught() {
    let a = arena();
    let b = arena();
    let cookie_a = a.cookie_for(256).unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let _ = cpu_b.alloc_cookie(cookie_a);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "different arena")]
fn cross_arena_cookie_free_is_caught() {
    let a = arena();
    let b = arena();
    let cookie_a = a.cookie_for(256).unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let p = cpu_b.alloc(256).unwrap();
    // SAFETY: deliberately wrong cookie — the guard must fire before any
    // freelist is touched.
    unsafe { cpu_b.free_cookie(p, cookie_a) };
}

/// Freeing the same block twice trips the poison check: the second free
/// sees the poison word the first free wrote.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "double free")]
fn double_free_is_caught() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: first free is legal; the second is the violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        cpu.free_sized(p, 128);
    }
}

/// Writing to a block after freeing it is caught when the allocator next
/// hands the block out (the poison word was overwritten).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "use-after-free")]
fn use_after_free_is_caught_at_realloc() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: allocated above, freed once; the write below is the
    // violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        core::ptr::write_bytes(p.as_ptr(), 0xff, 128);
    }
    // The freed block sits at the head of the per-CPU freelist, so the
    // next same-class allocation returns it and checks its poison.
    let _ = cpu.alloc(128);
}

// ---------------------------------------------------------------------
// Hardened profile: the same abuses, detected in *release* builds too.
// No `#[cfg(debug_assertions)]` below — these tests are profile-gated,
// not compiler-gated, and CI runs them with `--release`.
// ---------------------------------------------------------------------

/// Double free under the hardened profile: the second free finds the
/// free poison intact and panics (panicking profile) in any build.
#[test]
#[should_panic(expected = "double free")]
fn hardened_double_free_panics_in_any_build() {
    let a = hardened_arena();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: first free is legal; the second is the violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        cpu.free_sized(p, 128);
    }
}

/// Use-after-free under the hardened profile: a write through a freed
/// block (past the link word — clobbering the link is the *next* test)
/// is caught when the allocator re-issues the block, in any build.
#[test]
#[should_panic(expected = "use-after-free")]
fn hardened_use_after_free_panics_at_realloc() {
    // Quarantine off so the freed block is the very next one handed out.
    let mut h = HardenedConfig::full(0x0055_4146).panicking();
    h.quarantine = 0;
    let a = KmemArena::new(KmemConfig::small().hardened(h)).unwrap();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: allocated above, freed once; the write below is the
    // violation under test. Offset 8 lands in the poisoned body, not the
    // encoded link word.
    unsafe {
        cpu.free_sized(p, 128);
        core::ptr::write_bytes(p.as_ptr().add(8), 0xff, 8);
    }
    let _ = cpu.alloc(128);
}

/// Overwriting the *link word* of a freed block decodes to an
/// implausible pointer: the chain walk detects it instead of
/// dereferencing it, in any build.
#[test]
#[should_panic(expected = "corrupted freelist link")]
fn hardened_clobbered_link_panics_at_realloc() {
    let mut h = HardenedConfig::full(0x4c49_4e4b).panicking();
    h.quarantine = 0;
    let a = KmemArena::new(KmemConfig::small().hardened(h)).unwrap();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: allocated above, freed once; the link-word write is the
    // violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        (p.as_ptr() as *mut usize).write(!0usize);
    }
    let _ = cpu.alloc(128);
}

/// A cookie resolved against one arena is rejected by a hardened other
/// arena in any build (debug builds trip the assertion, release builds
/// the reported corruption — same message either way).
#[test]
#[should_panic(expected = "different arena")]
fn hardened_cross_arena_cookie_panics_in_any_build() {
    let a = hardened_arena();
    let b = hardened_arena();
    let cookie_a = a.cookie_for(256).unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let _ = cpu_b.alloc_cookie(cookie_a);
}

/// A pointer the arena never issued (here: from the host heap) is
/// rejected by the dope-vector lookup in every build profile.
#[test]
#[should_panic(expected = "does not manage")]
fn foreign_pointer_free_is_caught() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let mut foreign = Box::new([0u8; 256]);
    let p = std::ptr::NonNull::new(foreign.as_mut_ptr()).unwrap();
    // SAFETY: deliberately foreign pointer — the guard must reject it.
    unsafe { cpu.free(p) };
}
