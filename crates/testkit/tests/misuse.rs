//! Misuse detection: the debug-build guards must catch API abuse loudly
//! instead of corrupting the arena.
//!
//! The cookie-validation and poisoning guards are `debug_assert!`-based
//! (they must cost nothing in release kernels), so those tests are gated
//! on `debug_assertions`. The dope-vector foreign-pointer guard is
//! structural and fires in every build.

use kmem::{KmemArena, KmemConfig};

fn arena() -> KmemArena {
    KmemArena::new(KmemConfig::small()).unwrap()
}

/// A cookie resolved against one arena must be rejected by another:
/// the cookie embeds the issuing arena's id.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "different arena")]
fn cross_arena_cookie_alloc_is_caught() {
    let a = arena();
    let b = arena();
    let cookie_a = a.cookie_for(256).unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let _ = cpu_b.alloc_cookie(cookie_a);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "different arena")]
fn cross_arena_cookie_free_is_caught() {
    let a = arena();
    let b = arena();
    let cookie_a = a.cookie_for(256).unwrap();
    let cpu_b = b.register_cpu().unwrap();
    let p = cpu_b.alloc(256).unwrap();
    // SAFETY: deliberately wrong cookie — the guard must fire before any
    // freelist is touched.
    unsafe { cpu_b.free_cookie(p, cookie_a) };
}

/// Freeing the same block twice trips the poison check: the second free
/// sees the poison word the first free wrote.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "double free")]
fn double_free_is_caught() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: first free is legal; the second is the violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        cpu.free_sized(p, 128);
    }
}

/// Writing to a block after freeing it is caught when the allocator next
/// hands the block out (the poison word was overwritten).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "use-after-free")]
fn use_after_free_is_caught_at_realloc() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let p = cpu.alloc(128).unwrap();
    // SAFETY: allocated above, freed once; the write below is the
    // violation under test.
    unsafe {
        cpu.free_sized(p, 128);
        core::ptr::write_bytes(p.as_ptr(), 0xff, 128);
    }
    // The freed block sits at the head of the per-CPU freelist, so the
    // next same-class allocation returns it and checks its poison.
    let _ = cpu.alloc(128);
}

/// A pointer the arena never issued (here: from the host heap) is
/// rejected by the dope-vector lookup in every build profile.
#[test]
#[should_panic(expected = "does not manage")]
fn foreign_pointer_free_is_caught() {
    let a = arena();
    let cpu = a.register_cpu().unwrap();
    let mut foreign = Box::new([0u8; 256]);
    let p = std::ptr::NonNull::new(foreign.as_mut_ptr()).unwrap();
    // SAFETY: deliberately foreign pointer — the guard must reject it.
    unsafe { cpu.free(p) };
}
