//! Hardened-profile acceptance: the corruption defenses must *detect* in
//! release builds, not just in `debug_assert!`-instrumented ones, and
//! detection must never break block conservation — a caught corruption
//! becomes a typed error plus a counted, deliberate leak, never a silent
//! loss.
//!
//! Three tiers:
//!
//! * typed-error unit flows (double free through both the quarantine and
//!   the poison heuristic, conservation intact after each report);
//! * a property test: flip one random *word* of a freed block to garbage
//!   and the next same-class allocation must report it — the link word
//!   surfaces as a corrupted freelist link, every other word as a
//!   use-after-free poison overwrite;
//! * a seeded multi-threaded torture round with every defense armed, on
//!   the same op mix the default profile runs.

use kmem::verify::{verify_arena, verify_conservation, verify_empty};
use kmem::{CorruptionSite, HardenedConfig, KmemArena, KmemConfig, KmemError};
use kmem_testkit::{check, no_shrink, run_torture, TortureConfig};
use kmem_vm::SpaceConfig;

const SIZE: usize = 256;

/// Per-class held counts for [`verify_conservation`]: `held` blocks of
/// class `SIZE`, zero elsewhere.
fn held_counts(arena: &KmemArena, held: usize) -> Vec<usize> {
    arena
        .snapshot()
        .classes
        .iter()
        .map(|c| if c.size == SIZE { held } else { 0 })
        .collect()
}

/// Double free of a quarantined block: the ring still holds the first
/// free, so the second surfaces as a typed `DoubleFreeQuarantine` (the
/// poison heuristic is disabled here to isolate the ring).
#[test]
fn quarantine_reports_typed_double_free() {
    let mut h = HardenedConfig::full(0xd0_d0);
    h.poison = false;
    let arena = KmemArena::new(KmemConfig::small().hardened(h)).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let p = cpu.alloc(SIZE).unwrap();
    // SAFETY: the first free is legal; the second is the misuse under
    // test, and the hardened profile guarantees it is caught, not acted
    // on.
    let (first, second) = unsafe { (cpu.free_checked(p), cpu.free_checked(p)) };
    first.expect("legal free");
    match second {
        Err(KmemError::Corruption { site, addr }) => {
            assert_eq!(site, CorruptionSite::DoubleFreeQuarantine);
            assert_eq!(addr, p.as_ptr() as usize);
        }
        other => panic!("double free not reported: {other:?}"),
    }
    let snap = arena.snapshot();
    assert_eq!(snap.corruption_reports, 1, "{snap:?}");
    assert!(snap.quarantine_len >= 1, "{snap:?}");
    // The block is parked exactly once — the dropped second free did not
    // duplicate it anywhere.
    verify_arena(&arena);
    verify_conservation(&arena, &held_counts(&arena, 0));
    cpu.flush();
    arena.reclaim();
    verify_empty(&arena);
}

/// Double free past the quarantine: with the ring disabled, the intact
/// free poison identifies the block as already-freed in any build.
#[test]
fn poison_reports_typed_double_free_without_quarantine() {
    let mut h = HardenedConfig::full(0xd0_d1);
    h.quarantine = 0;
    let arena = KmemArena::new(KmemConfig::small().hardened(h)).unwrap();
    let cpu = arena.register_cpu().unwrap();
    let p = cpu.alloc(SIZE).unwrap();
    // SAFETY: first free legal, second is the misuse under test.
    let (first, second) = unsafe { (cpu.free_checked(p), cpu.free_checked(p)) };
    first.expect("legal free");
    match second {
        Err(KmemError::Corruption { site, .. }) => {
            assert_eq!(site, CorruptionSite::DoubleFreePoison);
        }
        other => panic!("double free not reported: {other:?}"),
    }
    let snap = arena.snapshot();
    assert_eq!(snap.corruption_reports, 1, "{snap:?}");
    assert_eq!(snap.poison_hits, 1, "{snap:?}");
    verify_arena(&arena);
    verify_conservation(&arena, &held_counts(&arena, 0));
    cpu.flush();
    arena.reclaim();
    verify_empty(&arena);
}

/// The detection property: overwrite one random word of a freed block
/// with garbage and the next same-class allocation reports a typed
/// corruption — `FreelistLink` when the encoded link word was hit,
/// `PoisonOverwrite` for any other word — and per-class conservation
/// still balances, the damaged blocks accounted as sunk rather than
/// lost.
#[test]
fn random_single_word_corruption_is_detected_on_next_alloc() {
    check(
        "random_single_word_corruption_is_detected_on_next_alloc",
        40,
        |rng| {
            let word_idx = rng.index(SIZE / 8);
            // Random nonzero garbage. A clobbered link word escapes
            // detection only if it *decodes* into the arena's own
            // 16 MB address range (≈2⁻⁴⁰ per draw), and a body word only
            // by matching the 64-bit poison pattern exactly — with fixed
            // seeds the draws are deterministic, so the test is stable.
            let garbage = rng.next_u64() | 1;
            (rng.next_u64(), word_idx, garbage)
        },
        no_shrink,
        |&(seed, word_idx, garbage)| {
            // Quarantine off so the corrupted block is at the head of the
            // per-CPU list — the very next allocation must walk over it.
            let mut h = HardenedConfig::full(seed);
            h.quarantine = 0;
            let arena = KmemArena::new(KmemConfig::small().hardened(h)).unwrap();
            let cpu = arena.register_cpu().unwrap();
            let keep: Vec<_> = (0..3).map(|_| cpu.alloc(SIZE).unwrap()).collect();
            let victim = cpu.alloc(SIZE).unwrap();
            // SAFETY: allocated above, freed exactly once; the word write
            // below is the corruption under test.
            unsafe {
                cpu.free_checked(victim).expect("legal free");
                (victim.as_ptr() as *mut u64).add(word_idx).write(garbage);
            }
            let err = cpu.alloc(SIZE).expect_err("corruption missed");
            match err {
                KmemError::Corruption { site, .. } => {
                    let expected = if word_idx == 0 {
                        CorruptionSite::FreelistLink
                    } else {
                        CorruptionSite::PoisonOverwrite
                    };
                    if site != expected {
                        return Err(format!("word {word_idx} reported as {site:?}"));
                    }
                }
                other => return Err(format!("unexpected error: {other}")),
            }
            let snap = arena.snapshot();
            if snap.corruption_reports != 1 {
                return Err(format!("reports: {}", snap.corruption_reports));
            }
            // The damaged block (and, for a link clobber, everything the
            // broken chain made unreachable) is sunk, not lost:
            // conservation must balance with only the survivors in hand.
            verify_arena(&arena);
            verify_conservation(&arena, &held_counts(&arena, keep.len()));
            for p in keep {
                // SAFETY: allocated above, freed exactly once.
                unsafe { cpu.free_checked(p).expect("legal free") };
            }
            cpu.flush();
            arena.reclaim();
            verify_arena(&arena);
            verify_conservation(&arena, &held_counts(&arena, 0));
            Ok(())
        },
    );
}

/// The full multi-threaded torture mix with every defense armed — same
/// ops, seeded, conservation checked at every phase boundary. Clean
/// traffic must never trip a false detection.
#[test]
fn hardened_torture_round_is_clean() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 25_000,
        phases: 3,
        seed: 0x4841_5244_5245_4e44, // "HARDREND"
        hardened: true,
        ..TortureConfig::standard()
    };
    let kcfg = KmemConfig::new(cfg.threads, SpaceConfig::new(256 << 20))
        .hardened(HardenedConfig::full(cfg.seed));
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);

    assert_eq!(report.ops, (cfg.threads * cfg.ops_per_thread) as u64);
    assert!(report.allocs > 5_000, "too few allocs: {report:?}");
    assert!(report.cross_frees > 500, "no cross-thread flow: {report:?}");
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);

    let snap = arena.snapshot();
    assert_eq!(
        snap.corruption_reports, 0,
        "clean traffic tripped a detector: {snap:?}"
    );
    arena.reclaim();
    verify_empty(&arena);
}
