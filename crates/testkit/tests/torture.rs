//! The acceptance-grade torture runs: real threads, randomized op mixes,
//! invariant walkers at every quiescent checkpoint.

use kmem::verify::{verify_arena, verify_empty};
use kmem::{Faults, HardenedConfig, KmemArena, KmemConfig, MaintConfig};
use kmem_testkit::{check, interleaving, no_shrink, run_torture, TortureConfig};
use kmem_vm::SpaceConfig;

/// Applies the run's hardened request (config or `KMEM_TORTURE_HARDENED`)
/// to the arena configuration: same op streams, every defense armed.
fn apply_hardened(kcfg: KmemConfig, cfg: &TortureConfig) -> KmemConfig {
    if cfg.hardened_requested() {
        let seed = cfg.seed;
        kcfg.hardened(HardenedConfig::full(seed))
    } else {
        kcfg
    }
}

/// Applies the run's maintenance-core request (config or
/// `KMEM_TORTURE_MAINT`): same op streams, slow-path work routed through
/// the mailbox and pumped at every quiescent checkpoint.
fn apply_maint(kcfg: KmemConfig, cfg: &TortureConfig) -> KmemConfig {
    if cfg.maint_requested() {
        kcfg.maint(MaintConfig::on())
    } else {
        kcfg
    }
}

/// 4 threads × 100 000 randomized ops over 4 size classes, with
/// cross-thread frees, flush pressure, and conservation checks at every
/// phase boundary — the headline multi-threaded soak.
/// `KMEM_TORTURE_HARDENED=1` reruns the same mix with every corruption
/// defense armed; `KMEM_TORTURE_MAINT=1` with the maintenance core on.
#[test]
fn standard_torture_run_is_clean() {
    let cfg = TortureConfig::standard();
    let kcfg = apply_maint(
        apply_hardened(
            KmemConfig::new(cfg.threads, SpaceConfig::new(256 << 20)),
            &cfg,
        ),
        &cfg,
    );
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);

    // The run must actually exercise the mix, not degenerate into no-ops.
    assert_eq!(
        report.ops,
        (cfg.threads * cfg.ops_per_thread) as u64,
        "every scheduled op must run"
    );
    assert!(report.allocs > 10_000, "too few allocs: {report:?}");
    assert!(
        report.local_frees > 1_000,
        "too few local frees: {report:?}"
    );
    assert!(
        report.cross_frees > 1_000,
        "cross-thread frees missing: {report:?}"
    );
    assert!(report.exchanges > 1_000, "exchange pool unused: {report:?}");
    assert!(report.flushes > 100, "flush arm unused: {report:?}");
    assert!(report.large_allocs > 0, "large arm unused: {report:?}");
    // One checkpoint per phase plus the post-teardown verification.
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);

    // Everything came back: the arena drains to empty.
    arena.reclaim();
    verify_empty(&arena);
}

/// The same mix under a starved physical pool: allocations fail, the
/// low-memory flush/drain ladder runs, and the invariants still hold at
/// every checkpoint.
#[test]
fn torture_survives_low_memory_pressure() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 25_000,
        phases: 3,
        max_held_per_thread: 1_024,
        ..TortureConfig::standard()
    };
    // 384 KB of frames versus megabytes of steady-state demand: the pool
    // runs dry and the flush/drain-request ladder gets real traffic.
    let kcfg = apply_maint(
        apply_hardened(
            KmemConfig::new(cfg.threads, SpaceConfig::new(64 << 20).phys_pages(96)),
            &cfg,
        ),
        &cfg,
    );
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);

    assert!(
        report.failed_allocs > 0,
        "pool never ran dry — pressure path untested: {report:?}"
    );
    assert!(report.allocs > 1_000, "too few allocs: {report:?}");
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);

    arena.reclaim();
    verify_empty(&arena);
}

/// Every failpoint site armed in rotation (all five policy shapes over six
/// phases) while the full multi-threaded mix runs. Injected failures must
/// surface as typed errors, never leak a block, and never wedge a drain
/// flag — every checkpoint runs the same invariant walkers as the clean
/// run, plus a dedicated poll round asserting no drain request survives.
///
/// Run any torture test with faults via `KMEM_TORTURE_FAULTS=1`; this one
/// opts in unconditionally so fault coverage is part of plain `cargo test`.
#[test]
fn fault_injection_torture_covers_every_site() {
    let cfg = TortureConfig {
        threads: 3,
        ops_per_thread: 25_000,
        phases: 6, // ≥ 5 phases: every site cycles through every policy shape
        max_held_per_thread: 1_024,
        faults: true,
        ..TortureConfig::standard()
    };
    // Tight enough that the backend sites (vm.carve, phys.claim) see real
    // traffic every phase, loose enough that allocation mostly succeeds.
    // 64 KB vmblks mean page-layer growth carves constantly, so the carve
    // failpoint gets hits in every policy rotation, not just at startup.
    // Two nodes, because the steal site is only consulted when a remote
    // shard exists to steal from.
    let mut kcfg = apply_maint(
        apply_hardened(
            KmemConfig::new(
                cfg.threads,
                SpaceConfig::new(64 << 20).phys_pages(384).vmblk_shift(16),
            )
            .nodes(2),
            &cfg,
        ),
        &cfg,
    );
    // The torture driver programs the plan; the arena only has to carry one.
    kcfg.faults = Faults::with_plan();
    let arena = KmemArena::new(kcfg).unwrap();
    let report = run_torture(&arena, &cfg);

    assert_eq!(report.ops, (cfg.threads * cfg.ops_per_thread) as u64);
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);
    assert!(report.allocs > 1_000, "too few allocs: {report:?}");
    assert!(
        report.injected_faults > 0,
        "no fault ever fired: {report:?}"
    );
    // Coverage: every registered site was both consulted and fired.
    let stats = arena.faults().plan().unwrap().site_stats();
    for site in kmem::faults::ALL_SITES {
        let s = stats
            .iter()
            .find(|s| s.site == site)
            .unwrap_or_else(|| panic!("site {site} never consulted"));
        assert!(s.fired > 0, "site {site} armed but never fired: {s:?}");
    }
    // The lock-free rework split every global access into a CAS fast path
    // and a locked slow path; the injected-fault mix must have driven both
    // directions down both, or the fault audit lost coverage.
    let snap = arena.snapshot();
    let (mut gf, mut gs, mut pf, mut ps) = (0u64, 0u64, 0u64, 0u64);
    for cs in &snap.classes {
        gf += cs.global.get_fast;
        gs += cs.global.get_slow;
        pf += cs.global.put_fast;
        ps += cs.global.put_slow;
    }
    assert!(gf > 0, "no get ever took the lock-free fast path: {snap:?}");
    assert!(gs > 0, "no get ever took the locked slow path: {snap:?}");
    assert!(pf > 0, "no put ever took the lock-free fast path: {snap:?}");
    assert!(ps > 0, "no put ever took the locked slow path: {snap:?}");

    arena.reclaim();
    verify_empty(&arena);
}

/// The full randomized mix with the maintenance core compiled in and ON:
/// slow-path drains, trims, and pressure escalations route through the
/// mailbox, and the torture driver pumps it at every quiescent
/// checkpoint, asserting the mailbox settles exactly
/// (`drained == posted − deduped`, backlog empty) each time. Faults stay
/// on so injected failures and the offload path are exercised together.
#[test]
fn maintenance_core_torture_settles_every_checkpoint() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 20_000,
        phases: 4,
        max_held_per_thread: 1_024,
        faults: true,
        maint: true,
        ..TortureConfig::standard()
    };
    // Starved enough that the pressure ladder climbs (mailbox drain
    // requests get traffic), two nodes so Spill work items carry distinct
    // shard keys through the dedup filter.
    let mut kcfg = apply_hardened(
        KmemConfig::new(
            cfg.threads,
            SpaceConfig::new(64 << 20).phys_pages(256).vmblk_shift(16),
        )
        .nodes(2)
        .maint(MaintConfig::on()),
        &cfg,
    );
    kcfg.faults = Faults::with_plan();
    let arena = KmemArena::new(kcfg).unwrap();
    assert!(arena.maint_enabled());
    let report = run_torture(&arena, &cfg);

    assert_eq!(report.ops, (cfg.threads * cfg.ops_per_thread) as u64);
    // One checkpoint per phase plus teardown — each one pumped the
    // mailbox and re-proved the settle identity inside the driver.
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);
    assert!(report.allocs > 1_000, "too few allocs: {report:?}");

    let m = arena.snapshot().maint;
    assert!(m.enabled);
    assert!(m.posted > 0, "offload never exercised: {m:?}");
    assert_eq!(m.drained, m.posted - m.deduped, "work leaked: {m:?}");
    assert_eq!(arena.maint_backlog(), 0);

    arena.reclaim();
    verify_empty(&arena);
}

/// Deterministic cross-CPU interleavings: several virtual CPUs driven
/// from one thread by a generated fair schedule. Unlike the real-thread
/// torture (where the OS scheduler decides the timing), a failure here
/// shrinks to a minimal schedule.
#[test]
fn interleaved_cpu_schedules_preserve_invariants() {
    const CPUS: usize = 3;
    check(
        "interleaved_cpu_schedules_preserve_invariants",
        20,
        |rng| {
            let schedule = interleaving(CPUS, 120)(rng);
            let seed = rng.next_u64();
            (schedule, seed)
        },
        no_shrink,
        |(schedule, seed)| {
            let arena = KmemArena::new(KmemConfig::new(CPUS, SpaceConfig::new(32 << 20))).unwrap();
            let cpus: Vec<_> = (0..CPUS).map(|_| arena.register_cpu().unwrap()).collect();
            let mut rng = kmem_testkit::Rng::new(*seed);
            let sizes = [48usize, 256, 1024];
            let mut held: Vec<Vec<(std::ptr::NonNull<u8>, usize)>> = vec![Vec::new(); CPUS];
            for &t in schedule {
                let cpu = &cpus[t];
                if held[t].len() < 40 && rng.ratio(3, 5) {
                    let size = *rng.choose(&sizes);
                    if let Ok(p) = cpu.alloc(size) {
                        held[t].push((p, size));
                    }
                } else if !held[t].is_empty() {
                    let i = rng.index(held[t].len());
                    let (p, size) = held[t].swap_remove(i);
                    // SAFETY: allocated above on this handle, freed once.
                    unsafe { cpu.free_sized(p, size) };
                } else if rng.ratio(1, 4) {
                    cpu.flush();
                }
            }
            verify_arena(&arena);
            for (t, blocks) in held.iter_mut().enumerate() {
                for (p, size) in blocks.drain(..) {
                    // SAFETY: allocated above on this handle, freed once.
                    unsafe { cpus[t].free_sized(p, size) };
                }
            }
            for cpu in &cpus {
                cpu.flush();
            }
            arena.reclaim();
            verify_empty(&arena);
            Ok(())
        },
    );
}
