//! The acceptance-grade torture runs: real threads, randomized op mixes,
//! invariant walkers at every quiescent checkpoint.

use kmem::verify::{verify_arena, verify_empty};
use kmem::{KmemArena, KmemConfig};
use kmem_testkit::{check, interleaving, no_shrink, run_torture, TortureConfig};
use kmem_vm::SpaceConfig;

/// 4 threads × 100 000 randomized ops over 4 size classes, with
/// cross-thread frees, flush pressure, and conservation checks at every
/// phase boundary — the headline multi-threaded soak.
#[test]
fn standard_torture_run_is_clean() {
    let cfg = TortureConfig::standard();
    let arena = KmemArena::new(KmemConfig::new(cfg.threads, SpaceConfig::new(256 << 20))).unwrap();
    let report = run_torture(&arena, &cfg);

    // The run must actually exercise the mix, not degenerate into no-ops.
    assert_eq!(
        report.ops,
        (cfg.threads * cfg.ops_per_thread) as u64,
        "every scheduled op must run"
    );
    assert!(report.allocs > 10_000, "too few allocs: {report:?}");
    assert!(
        report.local_frees > 1_000,
        "too few local frees: {report:?}"
    );
    assert!(
        report.cross_frees > 1_000,
        "cross-thread frees missing: {report:?}"
    );
    assert!(report.exchanges > 1_000, "exchange pool unused: {report:?}");
    assert!(report.flushes > 100, "flush arm unused: {report:?}");
    assert!(report.large_allocs > 0, "large arm unused: {report:?}");
    // One checkpoint per phase plus the post-teardown verification.
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);

    // Everything came back: the arena drains to empty.
    arena.reclaim();
    verify_empty(&arena);
}

/// The same mix under a starved physical pool: allocations fail, the
/// low-memory flush/drain ladder runs, and the invariants still hold at
/// every checkpoint.
#[test]
fn torture_survives_low_memory_pressure() {
    let cfg = TortureConfig {
        threads: 4,
        ops_per_thread: 25_000,
        phases: 3,
        max_held_per_thread: 1_024,
        ..TortureConfig::standard()
    };
    // 384 KB of frames versus megabytes of steady-state demand: the pool
    // runs dry and the flush/drain-request ladder gets real traffic.
    let arena = KmemArena::new(KmemConfig::new(
        cfg.threads,
        SpaceConfig::new(64 << 20).phys_pages(96),
    ))
    .unwrap();
    let report = run_torture(&arena, &cfg);

    assert!(
        report.failed_allocs > 0,
        "pool never ran dry — pressure path untested: {report:?}"
    );
    assert!(report.allocs > 1_000, "too few allocs: {report:?}");
    assert_eq!(report.checkpoints, cfg.phases as u64 + 1);

    arena.reclaim();
    verify_empty(&arena);
}

/// Deterministic cross-CPU interleavings: several virtual CPUs driven
/// from one thread by a generated fair schedule. Unlike the real-thread
/// torture (where the OS scheduler decides the timing), a failure here
/// shrinks to a minimal schedule.
#[test]
fn interleaved_cpu_schedules_preserve_invariants() {
    const CPUS: usize = 3;
    check(
        "interleaved_cpu_schedules_preserve_invariants",
        20,
        |rng| {
            let schedule = interleaving(CPUS, 120)(rng);
            let seed = rng.next_u64();
            (schedule, seed)
        },
        no_shrink,
        |(schedule, seed)| {
            let arena = KmemArena::new(KmemConfig::new(CPUS, SpaceConfig::new(32 << 20))).unwrap();
            let cpus: Vec<_> = (0..CPUS).map(|_| arena.register_cpu().unwrap()).collect();
            let mut rng = kmem_testkit::Rng::new(*seed);
            let sizes = [48usize, 256, 1024];
            let mut held: Vec<Vec<(std::ptr::NonNull<u8>, usize)>> = vec![Vec::new(); CPUS];
            for &t in schedule {
                let cpu = &cpus[t];
                if held[t].len() < 40 && rng.ratio(3, 5) {
                    let size = *rng.choose(&sizes);
                    if let Ok(p) = cpu.alloc(size) {
                        held[t].push((p, size));
                    }
                } else if !held[t].is_empty() {
                    let i = rng.index(held[t].len());
                    let (p, size) = held[t].swap_remove(i);
                    // SAFETY: allocated above on this handle, freed once.
                    unsafe { cpu.free_sized(p, size) };
                } else if rng.ratio(1, 4) {
                    cpu.flush();
                }
            }
            verify_arena(&arena);
            for (t, blocks) in held.iter_mut().enumerate() {
                for (p, size) in blocks.drain(..) {
                    // SAFETY: allocated above on this handle, freed once.
                    unsafe { cpus[t].free_sized(p, size) };
                }
            }
            for cpu in &cpus {
                cpu.flush();
            }
            arena.reclaim();
            verify_empty(&arena);
            Ok(())
        },
    );
}
