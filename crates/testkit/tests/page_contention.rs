//! Focused contention regression for the lock-free page & vmblk layers.
//!
//! The radix-list rework removed every lock from the page layer's steady
//! state: tagged-pointer bucket stacks, per-page atomic free counts with
//! coalesce-by-counter, and a lock-free whole-page cache in front of the
//! vmblk boundary-tag lock. These tests hammer that whole stack with real
//! threads — chain rings churning the radix lists, periodic full drains
//! forcing coalesce-to-page and cache traffic — and then assert the
//! conservation contract: every page and block accounted for, the layer
//! and the vmblk span structure both drained to empty.
//!
//! The thread count honours `KMEM_PAGE_THREADS` (the CI sweep drives
//! 2/4/8), and `KMEM_TORTURE_FAULTS=1` arms the `page.get`,
//! `page.coalesce`, and `vmblk.cache` failpoints so injected misses,
//! deferred coalesces, and cache bypasses interleave with real contention.

use std::collections::VecDeque;

use kmem::chain::Chain;
use kmem::pagelayer::PageLayer;
use kmem::vmblklayer::VmblkLayer;
use kmem::{faults, FailPolicy, Faults};
use kmem_vm::{KernelSpace, SpaceConfig};
use std::sync::Arc;

const BLOCK_SIZE: usize = 512;
const CLASS: usize = 3;
/// Blocks per alloc/free chain, as in the page-contention bench.
const WANT: usize = 3;
/// Standing chains each thread holds, oldest freed before each alloc.
const RING: usize = 4;
/// Every this many rounds a thread frees its whole ring, driving page
/// counts to `blocks_per_page` so coalesce-to-page and the vmblk page
/// cache see traffic even single-threaded.
const DRAIN_EVERY: usize = 64;
const OPS: usize = 6_000;

fn space() -> Arc<KernelSpace> {
    Arc::new(KernelSpace::new(
        SpaceConfig::new(32 << 20).vmblk_shift(16).phys_pages(2048),
    ))
}

fn env_threads() -> usize {
    std::env::var("KMEM_PAGE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| (1..=64).contains(&t))
        .unwrap_or(4)
}

fn env_faults() -> bool {
    std::env::var("KMEM_TORTURE_FAULTS").is_ok_and(|v| v == "1")
}

/// The storm: every thread rings short chains through one shared layer —
/// the refill/free pattern the global layer generates — with periodic
/// full drains so pages cross the empty↔full boundary under fire. With
/// faults armed, allocation failures, deferred coalesces, and cache
/// bypasses are injected throughout; the recovery pass (`flush_full_pages`)
/// must still find and release every fault-stranded full page, and not a
/// page or block may be lost either way.
#[test]
fn ring_storm_conserves_pages_and_blocks() {
    let threads = env_threads();
    let faults_handle = if env_faults() {
        Faults::with_plan()
    } else {
        Faults::none()
    };
    let vm = VmblkLayer::new_with_cache(space(), true, faults_handle.clone());
    let layer = PageLayer::new_with_faults(CLASS, BLOCK_SIZE, true, faults_handle.clone());

    const ARMED: [(&str, u64); 3] = [
        // Sparse injected misses: real traffic still dominates.
        (faults::PAGE_GET, 13),
        (faults::PAGE_COALESCE, 5),
        (faults::VMBLK_CACHE, 7),
    ];
    if let Some(plan) = faults_handle.plan() {
        for (site, nth) in ARMED {
            plan.set(site, FailPolicy::EveryNth(nth));
        }
    }

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut ring: VecDeque<Chain> = VecDeque::with_capacity(RING);
                for round in 0..OPS {
                    if ring.len() == RING {
                        let c = ring.pop_front().unwrap();
                        // SAFETY: ring chains came from this layer.
                        unsafe { layer.free_chain(&vm, c) };
                    }
                    match layer.alloc_chain(&vm, WANT) {
                        // Injected PAGE_GET miss (or real exhaustion):
                        // the caller retries next round, as the global
                        // layer would.
                        Err(_) => continue,
                        Ok(c) if c.is_empty() => continue,
                        Ok(c) => ring.push_back(c),
                    }
                    if round % DRAIN_EVERY == DRAIN_EVERY - 1 {
                        for c in ring.drain(..) {
                            // SAFETY: as above.
                            unsafe { layer.free_chain(&vm, c) };
                        }
                    }
                }
                for c in ring.drain(..) {
                    // SAFETY: as above.
                    unsafe { layer.free_chain(&vm, c) };
                }
            });
        }
    });

    if let Some(plan) = faults_handle.plan() {
        let stats = plan.site_stats();
        for (site, _) in ARMED {
            let s = stats
                .iter()
                .find(|s| s.site == site)
                .expect("armed site must have been consulted");
            assert!(s.fired > 0, "faults armed but never fired: {s:?}");
            plan.set(site, FailPolicy::Off);
        }
    }

    // Recovery + teardown: settle fault-stranded full pages, unpark the
    // page cache, and everything must come back to zero.
    layer.flush_full_pages(&vm);
    vm.drain_page_cache();
    assert_eq!(layer.usage(), (0, 0), "pages or blocks leaked");
    let st = layer.stats();
    assert_eq!(
        st.page_acquires.get(),
        st.page_releases.get(),
        "page acquire/release imbalance"
    );
    assert!(st.block_frees.get() > 0, "storm never freed a block");
    let vst = vm.stats();
    assert_eq!(
        vst.span_allocs.get(),
        vst.span_frees.get(),
        "span alloc/free imbalance"
    );
    assert_eq!(
        vst.vmblks_created.get(),
        vst.vmblks_released.get(),
        "empty vmblks not released"
    );
    vm.verify();
}

/// Page cycling must ride the lock-free whole-page cache: a full drain
/// releases pages to the cache (`cache_puts`), and the next refill takes
/// them back without the boundary-tag lock (`cache_hits`). Faults stay
/// off here — this pins the fast path itself.
#[test]
fn page_cycles_ride_the_whole_page_cache() {
    let threads = env_threads();
    let vm = VmblkLayer::new_with_cache(space(), true, Faults::none());
    let layer = PageLayer::new(CLASS, BLOCK_SIZE, true);
    let per_page = layer.blocks_per_page();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for _ in 0..500 {
                    // A full page's worth of blocks out, then everything
                    // back: the frees coalesce whole pages, which must
                    // park on the page cache and serve the next round.
                    let mut held = Vec::new();
                    for _ in 0..2 {
                        if let Ok(c) = layer.alloc_chain(&vm, per_page) {
                            held.push(c);
                        }
                    }
                    for c in held {
                        // SAFETY: chains came from this layer.
                        unsafe { layer.free_chain(&vm, c) };
                    }
                }
            });
        }
    });

    let vst = vm.stats();
    assert!(vst.cache_puts.get() > 0, "no page ever parked on the cache");
    assert!(vst.cache_hits.get() > 0, "no refill ever hit the cache");

    layer.flush_full_pages(&vm);
    vm.drain_page_cache();
    assert_eq!(layer.usage(), (0, 0), "pages or blocks leaked");
    assert_eq!(vst.span_allocs.get(), vst.span_frees.get());
    vm.verify();
}
