//! Deterministic pseudo-random numbers for tests: SplitMix64 seeding into
//! xoshiro256** (Blackman & Vigna), the same construction `rand`'s
//! `SmallRng` family uses.
//!
//! The generator is deliberately *not* cryptographic. What matters for a
//! test suite is that (a) a 64-bit seed fully determines the stream, so a
//! failure report can name the seed that reproduces it; (b) streams forked
//! for worker threads are statistically independent; and (c) there is no
//! dependency on the host, the time, or crates.io.

/// The SplitMix64 step: used to expand a 64-bit seed into generator state
/// and to derive per-thread stream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro256** is degenerate only in the all-zero state, which
        // SplitMix64 cannot produce from any seed; guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent stream (for a worker thread or a sub-task).
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn range_u64(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Modulo bias is at most span / 2^64 — irrelevant for test inputs.
        range.start + self.next_u64() % span
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    #[inline]
    pub fn range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform index into a collection of `len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.range_usize(0..len)
    }

    /// Returns `true` with probability `num / den`.
    #[inline]
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(num <= den && den > 0);
        self.range_u64(0..den) < num
    }

    /// Picks a uniformly random element.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
        let mut other = Rng::new(7).fork(4);
        assert_ne!(f1.next_u64(), other.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(99);
        for _ in 0..10_000 {
            let v = rng.range_usize(10..20);
            assert!((10..20).contains(&v));
        }
        // Both endpoints of a small range show up.
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.range_usize(0..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = Rng::new(5);
        let hits = (0..100_000).filter(|_| rng.ratio(1, 4)).count();
        assert!((20_000..30_000).contains(&hits), "1/4 ratio gave {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(11);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0, from the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }
}
