//! Hermetic in-tree testkit for the kmem reproduction.
//!
//! The repo's tier-1 gate (`cargo build --release --offline && cargo test
//! -q --offline`) must pass with **no network and no crates.io
//! dependencies**. This crate supplies, from scratch, the three pieces of
//! test infrastructure the suite previously pulled from crates.io:
//!
//! * [`rng`] — a deterministic PRNG (SplitMix64 seeding, xoshiro256**
//!   stream) replacing `rand`, with forkable per-thread streams;
//! * [`prop`] — a minimal shrinking property-test harness replacing
//!   `proptest`: closure generators, bounded greedy shrinking, and
//!   seed-bearing failure reports replayable via `KMEM_TESTKIT_SEED`;
//! * [`torture`] — a multi-threaded allocator torture driver that runs
//!   randomized alloc/free/exchange programs against a
//!   [`kmem::KmemArena`] through all three interfaces (standard, sized,
//!   cookie), including cross-thread frees and flush pressure, and runs
//!   the cross-layer invariant walkers at every quiescent phase
//!   boundary. Failures report a seed replayable via `KMEM_TORTURE_SEED`.
//!   With `KMEM_TORTURE_FAULTS=1` (or `TortureConfig::faults`) it also
//!   rotates deterministic failpoint policies across every allocator
//!   layer boundary, phase by phase, replayable via
//!   `KMEM_TORTURE_FAULT_SEED` — proving injected failures surface as
//!   typed errors without leaking blocks or wedging drain flags.
//!
//! The paper's central claims are concurrency claims — per-CPU caches
//! never touch other CPUs' state, the global layer stays within
//! `2 * gbltarget`, coalescing is complete — and this crate is how the
//! repo exercises them under real multi-threaded load.

pub mod prop;
pub mod rng;
pub mod torture;

pub use prop::{check, interleaving, no_shrink, shrink_u64, shrink_usize, shrink_vec, vec_of};
pub use rng::Rng;
pub use torture::{run_torture, TortureConfig, TortureReport};
