//! A minimal shrinking property-test harness.
//!
//! This replaces `proptest` for in-repo use so the test suite builds with
//! no network access. The moving parts:
//!
//! * a **generator** is any `Fn(&mut Rng) -> T`;
//! * a **shrinker** is any `Fn(&T) -> Vec<T>` returning *simpler*
//!   candidates (return an empty vec to disable shrinking);
//! * the **property** returns `Err(message)` — or panics, e.g. via
//!   `assert!` — to signal failure.
//!
//! [`check`] runs the property over `cases` generated inputs. On failure
//! it greedily shrinks within a bounded step budget and panics with the
//! minimal failing input **and the seed that reproduces the run**:
//!
//! ```text
//! property 'split_bounds' failed (seed 0xd1ab0..., case 17, 9 shrink steps)
//! ```
//!
//! Every run is deterministic: the master seed is derived from the
//! property name, so CI is stable, and `KMEM_TESTKIT_SEED=0x...` replays
//! any reported failure (`KMEM_TESTKIT_CASES=N` overrides the case count).

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};

/// How many shrink candidates may be *evaluated* before shrinking stops.
const MAX_SHRINK_EVALS: u32 = 2_000;

/// FNV-1a, used to derive a per-property default seed from its name.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var}={raw} is not a number"),
    }
}

/// Runs `prop` against `cases` inputs drawn from `gen`, shrinking any
/// failure with `shrink`.
///
/// # Panics
///
/// Panics with a seed-bearing report on the first (shrunk) failing input.
pub fn check<T, G, S, P>(name: &str, cases: u32, gen: G, shrink: S, prop: P)
where
    T: core::fmt::Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let seed = env_u64("KMEM_TESTKIT_SEED").unwrap_or_else(|| hash_name(name));
    let cases = env_u64("KMEM_TESTKIT_CASES").map_or(cases, |c| c as u32);
    for case in 0..cases {
        // Each case gets its own stream so a failure depends only on
        // (seed, case), not on how many values earlier cases consumed.
        let mut sm = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::new(splitmix64(&mut sm));
        let value = gen(&mut rng);
        let Err(first_msg) = run_prop(&prop, &value) else {
            continue;
        };
        // Greedy bounded shrinking: take the first simpler candidate that
        // still fails, repeat from there.
        let mut current = value;
        let mut msg = first_msg;
        let mut evals = 0u32;
        let mut steps = 0u32;
        'outer: while evals < MAX_SHRINK_EVALS {
            for cand in shrink(&current) {
                evals += 1;
                if let Err(m) = run_prop(&prop, &cand) {
                    current = cand;
                    msg = m;
                    steps += 1;
                    continue 'outer;
                }
                if evals >= MAX_SHRINK_EVALS {
                    break;
                }
            }
            break;
        }
        panic!(
            "property '{name}' failed (seed 0x{seed:016x}, case {case}, \
             {steps} shrink steps)\n  input: {current:?}\n  error: {msg}\n  \
             reproduce with: KMEM_TESTKIT_SEED=0x{seed:x} cargo test {name}"
        );
    }
}

/// Evaluates the property, converting panics (e.g. failed `assert!`s)
/// into `Err` so they participate in shrinking.
fn run_prop<T, P>(prop: &P, value: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        // NB: `&*payload`, not `&payload` — a `&Box<dyn Any>` would itself
        // unsize-coerce to `&dyn Any` and the downcast would always miss.
        Err(payload) => Err(payload_message(&*payload)),
    }
}

fn payload_message(payload: &(dyn core::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// A shrinker that never shrinks.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// Generator combinator: a `Vec<T>` whose length is drawn from `len`.
pub fn vec_of<T>(
    len: core::ops::Range<usize>,
    elem: impl Fn(&mut Rng) -> T,
) -> impl Fn(&mut Rng) -> Vec<T> {
    move |rng| {
        let n = rng.range_usize(len.clone());
        (0..n).map(|_| elem(rng)).collect()
    }
}

/// Generator for a thread interleaving: a schedule in which each of
/// `threads` ids appears exactly `ops_per_thread` times, in random order.
/// Replaying the schedule on one real thread explores cross-CPU
/// interleavings deterministically.
pub fn interleaving(threads: usize, ops_per_thread: usize) -> impl Fn(&mut Rng) -> Vec<usize> {
    move |rng| {
        let mut schedule: Vec<usize> = (0..threads)
            .flat_map(|t| core::iter::repeat_n(t, ops_per_thread))
            .collect();
        rng.shuffle(&mut schedule);
        schedule
    }
}

/// Shrinks a vector: first by dropping chunks (halves, then quarters,
/// then single elements), then by shrinking single elements via `elem`.
pub fn shrink_vec<T: Clone>(v: &[T], elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let n = v.len();
    if n == 0 {
        return out;
    }
    // Whole-chunk removal, coarse to fine.
    let mut chunk = n.div_ceil(2);
    while chunk >= 1 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut shorter = Vec::with_capacity(n - (end - start));
            shorter.extend_from_slice(&v[..start]);
            shorter.extend_from_slice(&v[end..]);
            out.push(shorter);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
        // Keep the candidate list bounded for long vectors.
        if out.len() > 64 {
            break;
        }
    }
    // Element-wise shrinking (bounded).
    for i in 0..n.min(24) {
        for simpler in elem(&v[i]) {
            let mut copy = v.to_vec();
            copy[i] = simpler;
            out.push(copy);
        }
    }
    out
}

/// Shrinks an integer toward `lo`: the minimum, the midpoint, and the
/// predecessor.
pub fn shrink_u64(v: u64, lo: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v <= lo {
        return out;
    }
    out.push(lo);
    let mid = lo + (v - lo) / 2;
    if mid != lo && mid != v {
        out.push(mid);
    }
    out.push(v - 1);
    out
}

/// [`shrink_u64`] for `usize`.
pub fn shrink_usize(v: usize, lo: usize) -> Vec<usize> {
    shrink_u64(v as u64, lo as u64)
        .into_iter()
        .map(|x| x as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_checks_all_cases() {
        let mut count = 0u32;
        let counter = core::cell::Cell::new(0u32);
        check(
            "always_true",
            50,
            |rng| rng.range_u64(0..100),
            no_shrink,
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 50);
    }

    #[test]
    fn failure_reports_seed_and_shrinks_to_minimal() {
        // Property fails for any v >= 10; the minimal counterexample the
        // integer shrinker can reach is exactly 10.
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                "fails_at_ten",
                200,
                |rng| rng.range_u64(0..1000),
                |&v| shrink_u64(v, 0),
                |&v| {
                    if v < 10 {
                        Ok(())
                    } else {
                        Err(format!("{v} too big"))
                    }
                },
            );
        }));
        let msg = payload_message(&*r.unwrap_err());
        assert!(msg.contains("seed 0x"), "no seed in: {msg}");
        assert!(msg.contains("input: 10"), "not shrunk to 10: {msg}");
        assert!(msg.contains("KMEM_TESTKIT_SEED"), "no repro hint: {msg}");
    }

    #[test]
    fn vec_shrinker_reaches_single_element() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                "one_bad_apple",
                100,
                vec_of(0..50, |rng| rng.range_u64(0..100)),
                |v| shrink_vec(v, |&e| shrink_u64(e, 0)),
                |v: &Vec<u64>| {
                    if v.contains(&77) {
                        Err("found 77".into())
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = payload_message(&*r.unwrap_err());
        assert!(msg.contains("input: [77]"), "not minimal: {msg}");
    }

    #[test]
    fn panicking_properties_are_caught_and_shrunk() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                "assert_style",
                100,
                |rng| rng.range_usize(0..64),
                |&v| shrink_usize(v, 0),
                |&v| {
                    assert!(v < 32, "too big: {v}");
                    Ok(())
                },
            );
        }));
        let msg = payload_message(&*r.unwrap_err());
        assert!(msg.contains("input: 32"), "not shrunk: {msg}");
        assert!(msg.contains("too big"), "assert message lost: {msg}");
    }

    #[test]
    fn interleaving_is_a_fair_schedule() {
        let mut rng = Rng::new(1);
        let schedule = interleaving(3, 10)(&mut rng);
        assert_eq!(schedule.len(), 30);
        for t in 0..3 {
            assert_eq!(schedule.iter().filter(|&&x| x == t).count(), 10);
        }
    }
}
