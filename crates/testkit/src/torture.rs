//! Multi-threaded allocator torture driver.
//!
//! Runs N real threads, each registered as one virtual CPU of a
//! [`KmemArena`], through a long randomized mix of the operations the
//! paper cares about:
//!
//! * allocations through all three interfaces (standard, sized, cookie),
//!   across several size classes, plus multi-page "large" requests;
//! * frees on the allocating CPU **and cross-thread frees** through a
//!   shared exchange pool — the one-CPU-allocates/another-frees traffic
//!   the global layer exists for;
//! * explicit cache flushes, which push odd-sized chains into the global
//!   layer's bucket list (the regrouping path), and `poll()` calls that
//!   service low-memory drain requests from other CPUs.
//!
//! The run is split into phases. At the end of each phase every thread
//! quiesces at a barrier and the leader runs the cross-layer invariant
//! walkers ([`verify_arena`]) plus, optionally, exact per-class block
//! conservation ([`verify_conservation`]) counting the blocks threads and
//! the exchange pool still hold. Any failure anywhere aborts the whole
//! run and reports **the seed that reproduces it**.
//!
//! Per-thread operation streams are derived deterministically from the
//! seed, so a reported seed replays the same programs (the OS scheduler
//! still decides the cross-thread timing, as on real hardware).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr::NonNull;
use std::sync::{Arc, Condvar, Mutex};

use kmem::verify::{verify_arena, verify_conservation};
use kmem::{faults, AllocError, Cookie, CpuHandle, FailPolicy, FaultPlan, KmemArena, KmemSnapshot};
use kmem_vm::PAGE_SIZE;

use crate::rng::Rng;

/// Parameters for one torture run.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Worker threads; each claims one virtual CPU of the arena.
    pub threads: usize,
    /// Randomized operations per thread (spread over the phases).
    pub ops_per_thread: usize,
    /// Quiescent verification checkpoints (≥ 1; the run ends with one).
    pub phases: usize,
    /// Request sizes to draw from (each must map to a size class).
    pub sizes: Vec<usize>,
    /// Bound on blocks a thread holds privately before frees are forced.
    pub max_held_per_thread: usize,
    /// Bound on the shared cross-thread exchange pool.
    pub exchange_capacity: usize,
    /// Master seed (`KMEM_TORTURE_SEED` overrides it).
    pub seed: u64,
    /// Weight (in 1/64ths) of multi-page allocations; 0 disables them.
    pub large_weight: u64,
    /// Run exact block conservation at every checkpoint (slower).
    pub check_conservation: bool,
    /// Rotate deterministic fault-injection policies across every
    /// failpoint site, re-drawn each phase (`KMEM_TORTURE_FAULTS=1`/`0`
    /// overrides). Requires an arena built with
    /// `KmemConfig { faults: Faults::with_plan(), .. }`; silently inert on
    /// an arena without a plan, so a blanket env flag cannot break
    /// fault-less tests.
    pub faults: bool,
    /// Seed for the fault-policy rotation (`KMEM_TORTURE_FAULT_SEED`
    /// overrides), independent of the op-stream seed so the same ops can
    /// be replayed under different fault schedules.
    pub fault_seed: u64,
    /// Request the hardened profile (`KMEM_TORTURE_HARDENED=1`/`0`
    /// overrides). The driver itself never builds arenas; tests use
    /// [`TortureConfig::hardened_requested`] to decide whether to
    /// construct theirs with `HardenedConfig::full(seed)`, so the same
    /// op streams replay with every defense armed.
    pub hardened: bool,
    /// Request the maintenance core (`KMEM_TORTURE_MAINT=1`/`0`
    /// overrides). As with `hardened`, tests use
    /// [`TortureConfig::maint_requested`] to decide whether to build
    /// their arena with `MaintConfig::on()`; the driver then pumps the
    /// mailbox at every quiescent checkpoint and asserts it settles
    /// exactly (`backlog == 0`, `drained == posted - deduped`).
    pub maint: bool,
}

impl TortureConfig {
    /// The acceptance-grade configuration: 4 threads × 100 000 ops over
    /// 4 size classes, cross-thread frees, flush pressure, conservation
    /// checks at every phase.
    pub fn standard() -> TortureConfig {
        TortureConfig {
            threads: 4,
            ops_per_thread: 100_000,
            phases: 4,
            sizes: vec![48, 256, 1024, 4096],
            max_held_per_thread: 2_048,
            exchange_capacity: 4_096,
            seed: 0x7042_7475_7265_4b4d, // "tOrTureKM"
            large_weight: 2,
            check_conservation: true,
            faults: false,
            fault_seed: 0x4641_554c_5453_2121, // "FAULTS!!"
            hardened: false,
            maint: false,
        }
    }

    /// Whether this run should rotate fault policies, after applying the
    /// `KMEM_TORTURE_FAULTS` environment override. Tests use this to
    /// decide whether to build the arena with a fault plan.
    pub fn faults_requested(&self) -> bool {
        match std::env::var("KMEM_TORTURE_FAULTS") {
            Ok(v) => !matches!(v.trim(), "" | "0"),
            Err(_) => self.faults,
        }
    }

    /// Whether the arena for this run should be built with the hardened
    /// profile, after applying the `KMEM_TORTURE_HARDENED` environment
    /// override. The op streams are unchanged; only the arena's defenses
    /// (link encoding, poison, carve shuffle, quarantine) differ.
    pub fn hardened_requested(&self) -> bool {
        match std::env::var("KMEM_TORTURE_HARDENED") {
            Ok(v) => !matches!(v.trim(), "" | "0"),
            Err(_) => self.hardened,
        }
    }

    /// Whether the arena for this run should be built with the
    /// maintenance core enabled, after applying the `KMEM_TORTURE_MAINT`
    /// environment override. The op streams are unchanged; only the
    /// slow-path routing (deferred mailbox posts vs inline locked
    /// drains) differs.
    pub fn maint_requested(&self) -> bool {
        match std::env::var("KMEM_TORTURE_MAINT") {
            Ok(v) => !matches!(v.trim(), "" | "0"),
            Err(_) => self.maint,
        }
    }
}

/// Aggregate counts of what a torture run actually did — tests assert on
/// these so a silently degenerate mix (e.g. all allocations failing)
/// cannot pass.
#[derive(Debug, Default, Clone)]
pub struct TortureReport {
    /// Operations executed (of any kind).
    pub ops: u64,
    /// Successful class-sized allocations.
    pub allocs: u64,
    /// Frees by the thread that allocated.
    pub local_frees: u64,
    /// Frees of blocks taken from the exchange pool (cross-thread).
    pub cross_frees: u64,
    /// Blocks parked in the exchange pool.
    pub exchanges: u64,
    /// Allocation attempts that returned `OutOfMemory`.
    pub failed_allocs: u64,
    /// Explicit per-CPU cache flushes.
    pub flushes: u64,
    /// Successful multi-page allocations.
    pub large_allocs: u64,
    /// Quiescent checkpoints at which the invariant walkers ran.
    pub checkpoints: u64,
    /// Failpoint firings during the run (0 when fault rotation is off).
    pub injected_faults: u64,
}

impl TortureReport {
    fn absorb(&mut self, other: &TortureReport) {
        self.ops += other.ops;
        self.allocs += other.allocs;
        self.local_frees += other.local_frees;
        self.cross_frees += other.cross_frees;
        self.exchanges += other.exchanges;
        self.failed_allocs += other.failed_allocs;
        self.flushes += other.flushes;
        self.large_allocs += other.large_allocs;
        self.checkpoints += other.checkpoints;
        self.injected_faults += other.injected_faults;
    }
}

/// A barrier that can be aborted: when any thread panics, the others are
/// released instead of waiting forever for it.
struct SyncPoint {
    state: Mutex<SyncState>,
    cv: Condvar,
    n: usize,
}

struct SyncState {
    arrived: usize,
    generation: u64,
    aborted: bool,
}

impl SyncPoint {
    fn new(n: usize) -> SyncPoint {
        SyncPoint {
            state: Mutex::new(SyncState {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            n,
        }
    }

    /// Waits for all threads; returns `false` if the run was aborted.
    fn wait(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        if s.aborted {
            return false;
        }
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return true;
        }
        let gen = s.generation;
        while s.generation == gen && !s.aborted {
            s = self.cv.wait(s).unwrap();
        }
        !s.aborted
    }

    fn abort(&self) {
        let mut s = self.state.lock().unwrap();
        s.aborted = true;
        self.cv.notify_all();
    }
}

/// A block parked for another thread to free: address plus the index of
/// its request size in `cfg.sizes` (ownership travels with the entry).
type Parked = (usize, usize);

struct Shared {
    exchange: Mutex<Vec<Parked>>,
    /// Per-thread (class-indexed) held counts, published at checkpoints.
    held_tables: Vec<Mutex<Vec<usize>>>,
    sync: SyncPoint,
    /// Leader-only snapshot state carried across checkpoints: the previous
    /// checkpoint's counter sweep and per-class torture holdings, so each
    /// checkpoint can verify the snapshot *delta* against ground truth.
    observer: Mutex<ObserverState>,
    /// Fault-policy rotation state; present only when fault injection is
    /// active for this run.
    injector: Option<FaultInjector>,
}

/// Rotates deterministic failpoint policies across every site at each
/// phase boundary, drawing from a dedicated RNG stream (independent of the
/// op streams, so the same ops replay under different fault schedules).
struct FaultInjector {
    plan: Arc<FaultPlan>,
    rng: Mutex<Rng>,
}

impl FaultInjector {
    /// Installs this phase's policy at every site. Policy *shapes* rotate
    /// by `(phase + site_index) % 5`, so within one phase different sites
    /// run different shapes, and over five phases every site sees every
    /// shape — including `Off`, which exercises disarming under load.
    fn rotate(&self, phase: usize) {
        let mut rng = self.rng.lock().unwrap();
        for (i, site) in faults::ALL_SITES.iter().enumerate() {
            let r = rng.next_u64();
            let policy = match (phase + i) % 5 {
                0 => FailPolicy::EveryNth(2 + r % 6),
                1 => FailPolicy::AfterK(r % 4),
                2 => FailPolicy::Prob {
                    threshold: (2048 + (r % 8192)) as u16,
                    seed: rng.next_u64(),
                },
                3 => {
                    let len = (4 + r % 12) as usize;
                    FailPolicy::Script((0..len).map(|_| rng.range_u64(0..2) == 1).collect())
                }
                _ => FailPolicy::Off,
            };
            self.plan.set(site, policy);
        }
    }
}

struct ObserverState {
    prev: KmemSnapshot,
    /// Blocks the torture run held per class at `prev` (threads + exchange).
    prev_held: Vec<usize>,
}

/// Runs the torture workload against `arena`.
///
/// The arena must have at least `cfg.threads` unclaimed virtual CPUs.
/// On success the arena is left quiescent with every torture block freed
/// and every cache flushed (the caller can `reclaim()` + `verify_empty`).
///
/// # Panics
///
/// Panics — with the reproducing seed in the message — if any invariant
/// walker fails, any thread panics, or the configuration is unusable.
pub fn run_torture(arena: &KmemArena, cfg: &TortureConfig) -> TortureReport {
    assert!(cfg.threads >= 1, "torture needs at least one thread");
    assert!(cfg.phases >= 1, "torture needs at least one phase");
    assert!(!cfg.sizes.is_empty(), "torture needs at least one size");
    let seed = std::env::var("KMEM_TORTURE_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .unwrap_or(cfg.seed);
    let fault_seed = std::env::var("KMEM_TORTURE_FAULT_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .unwrap_or(cfg.fault_seed);
    // A fault-armed run needs an arena that carries a plan. A blanket
    // `KMEM_TORTURE_FAULTS=1` in the environment must not break tests whose
    // arenas were built without one, so the request is ignored, not an
    // error, when no plan is present.
    let injector = if cfg.faults_requested() {
        arena.faults().plan().cloned().map(|plan| FaultInjector {
            plan,
            rng: Mutex::new(Rng::new(fault_seed)),
        })
    } else {
        None
    };
    let fired_baseline = arena.faults().totals().1;
    let cookies: Vec<Cookie> = cfg
        .sizes
        .iter()
        .map(|&s| {
            arena
                .cookie_for(s)
                .unwrap_or_else(|| panic!("size {s} maps to no class"))
        })
        .collect();
    let nclasses = arena.nclasses();
    let shared = Shared {
        exchange: Mutex::new(Vec::new()),
        held_tables: (0..cfg.threads)
            .map(|_| Mutex::new(vec![0; nclasses]))
            .collect(),
        sync: SyncPoint::new(cfg.threads),
        // Baseline sweep before any worker runs: the run's own traffic is
        // then exactly the delta from here, even on a pre-used arena.
        observer: Mutex::new(ObserverState {
            prev: arena.snapshot(),
            prev_held: vec![0; nclasses],
        }),
        injector,
    };
    // Arm the first phase's policies before any worker runs, so injection
    // covers the run end-to-end (it stays armed through teardown, too).
    if let Some(inj) = &shared.injector {
        inj.rotate(0);
    }
    let mut master = Rng::new(seed);
    let thread_rngs: Vec<Rng> = (0..cfg.threads).map(|t| master.fork(t as u64)).collect();

    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut total = TortureReport::default();
        let partials: Vec<TortureReport> = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for (tid, rng) in thread_rngs.into_iter().enumerate() {
                let shared = &shared;
                let cookies = &cookies;
                joins.push(scope.spawn(move || {
                    let body = AssertUnwindSafe(|| worker(arena, cfg, shared, cookies, tid, rng));
                    match catch_unwind(body) {
                        Ok(report) => report,
                        Err(payload) => {
                            shared.sync.abort();
                            resume_unwind(payload);
                        }
                    }
                }));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        for p in &partials {
            total.absorb(p);
        }
        // Disarm before handing the arena back (counters are preserved), so
        // the caller's own post-run allocations cannot be injected.
        if let Some(inj) = &shared.injector {
            inj.plan.reset();
        }
        total.injected_faults = arena.faults().totals().1 - fired_baseline;
        total
    }));
    match result {
        Ok(report) => report,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".into()
            };
            panic!(
                "torture run failed with seed 0x{seed:016x} \
                 (reproduce with KMEM_TORTURE_SEED=0x{seed:x}): {msg}"
            );
        }
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn worker(
    arena: &KmemArena,
    cfg: &TortureConfig,
    shared: &Shared,
    cookies: &[Cookie],
    tid: usize,
    mut rng: Rng,
) -> TortureReport {
    let cpu = arena
        .register_cpu()
        .expect("arena has fewer CPUs than torture threads");
    let mut report = TortureReport::default();
    let mut held: Vec<Parked> = Vec::new();
    let mut held_large: Vec<(usize, usize)> = Vec::new();
    let leader = tid == 0;

    let per_phase = cfg.ops_per_thread.div_ceil(cfg.phases);
    let mut remaining = cfg.ops_per_thread;
    for phase in 0..cfg.phases {
        for _ in 0..per_phase.min(remaining) {
            step(
                cfg,
                shared,
                cookies,
                &cpu,
                &mut rng,
                &mut held,
                &mut held_large,
                &mut report,
            );
            report.ops += 1;
            // Leader-only live sampling: a sweep taken while every other
            // thread keeps running must still satisfy the live-sample
            // bounds — including the fast/slow partitions of the global
            // layer's lock-free paths (`get_fast + get_slow <= get`).
            if leader && report.ops.is_multiple_of(1024) {
                arena
                    .snapshot()
                    .check_live()
                    .unwrap_or_else(|e| panic!("live snapshot invariant failed: {e}"));
            }
        }
        remaining = remaining.saturating_sub(per_phase);

        // Publish what this thread still holds, then quiesce.
        publish_held(shared, cookies, tid, &held);
        if !shared.sync.wait() {
            return report;
        }
        // Maintenance round: the leader pumps the mailbox to empty (a
        // no-op when the core is disabled). Running DrainCpu items sets
        // drain flags that the poll round below services.
        if leader {
            pump_maint(arena);
        }
        if !shared.sync.wait() {
            return report;
        }
        // Dedicated drain-service round: with every thread stopped, one
        // poll() per CPU must clear every drain flag the phase (or the
        // pump above) posted — nothing here allocates, so no new
        // requests can appear. With the core on, each serviced drain may
        // *defer* its global-layer puts, so a second pump settles those
        // before the checkpoint asserts.
        cpu.poll();
        if !shared.sync.wait() {
            return report;
        }
        if leader {
            pump_maint(arena);
            // Only meaningful when this run polls every configured CPU;
            // request_drain flags slots nobody claimed, too.
            if cfg.threads == arena.ncpus() {
                assert_eq!(
                    arena.pending_drains(),
                    0,
                    "drain request survived a full poll round (wedged flag)"
                );
            }
            checkpoint(arena, cfg, shared, cookies, &mut report);
            if let Some(inj) = &shared.injector {
                inj.rotate(phase + 1);
            }
        }
        if !shared.sync.wait() {
            return report;
        }
    }

    // Teardown: everyone frees what they hold...
    for (addr, size_idx) in held.drain(..) {
        let p = NonNull::new(addr as *mut u8).unwrap();
        // SAFETY: allocated by this run, freed exactly once.
        unsafe { cpu.free_cookie(p, cookies[size_idx]) };
    }
    for (addr, _pages) in held_large.drain(..) {
        let p = NonNull::new(addr as *mut u8).unwrap();
        // SAFETY: allocated by this run, freed exactly once.
        unsafe { cpu.free(p) };
    }
    if !shared.sync.wait() {
        return report;
    }
    // ...the leader drains the exchange pool (one last burst of
    // cross-thread frees)...
    if leader {
        let parked = core::mem::take(&mut *shared.exchange.lock().unwrap());
        for (addr, size_idx) in parked {
            let p = NonNull::new(addr as *mut u8).unwrap();
            // SAFETY: parked blocks are live blocks owned by the pool.
            unsafe { cpu.free_cookie(p, cookies[size_idx]) };
            report.cross_frees += 1;
        }
    }
    if !shared.sync.wait() {
        return report;
    }
    // ...every CPU flushes its caches, and the leader verifies the fully
    // drained state.
    cpu.flush();
    if !shared.sync.wait() {
        return report;
    }
    if leader {
        // Faults stay armed through teardown: every path that ran since the
        // last phase (frees, flushes, reclaim) must tolerate injection
        // without losing a block or wedging a drain flag. The teardown
        // frees and flushes never allocate, so no DrainCpu work can have
        // been posted since the last poll round — one pump settles every
        // deferred put before the final verification.
        pump_maint(arena);
        if cfg.threads == arena.ncpus() {
            assert_eq!(arena.pending_drains(), 0, "drain flag wedged at teardown");
        }
        arena.reclaim();
        verify_arena(arena);
        verify_conservation(arena, &vec![0; arena.nclasses()]);
        snapshot_checkpoint(arena, shared, &vec![0; arena.nclasses()]);
        report.checkpoints += 1;
    }
    report
}

#[expect(clippy::too_many_arguments)] // private op dispatcher, not API
fn step(
    cfg: &TortureConfig,
    shared: &Shared,
    cookies: &[Cookie],
    cpu: &CpuHandle,
    rng: &mut Rng,
    held: &mut Vec<Parked>,
    held_large: &mut Vec<(usize, usize)>,
    report: &mut TortureReport,
) {
    // Weighted op mix out of 64. Holding too much forces the free arm so
    // bounded pools cannot wedge the run.
    let over_budget = held.len() >= cfg.max_held_per_thread;
    let roll = if over_budget {
        63
    } else {
        rng.range_u64(0..64)
    };
    match roll {
        // Allocate through a randomly chosen interface.
        0..=23 => {
            let size_idx = rng.index(cfg.sizes.len());
            let size = cfg.sizes[size_idx];
            let r = match rng.range_u64(0..3) {
                0 => cpu.alloc(size),
                1 => cpu.alloc_zeroed(size),
                _ => cpu.alloc_cookie(cookies[size_idx]),
            };
            match r {
                Ok(p) => {
                    // Scribble over the block: poison/overlap detectors in
                    // debug builds must still hold at the next alloc.
                    // SAFETY: fresh block of at least `size` bytes.
                    unsafe { core::ptr::write_bytes(p.as_ptr(), 0x5a, size) };
                    held.push((p.as_ptr() as usize, size_idx));
                    report.allocs += 1;
                }
                Err(AllocError::OutOfMemory { .. }) => report.failed_allocs += 1,
                Err(e) => panic!("unexpected alloc error: {e}"),
            }
        }
        // Free one of our own blocks, via a randomly chosen interface.
        24..=39 => {
            if held.is_empty() {
                return;
            }
            let (addr, size_idx) = held.swap_remove(rng.index(held.len()));
            let p = NonNull::new(addr as *mut u8).unwrap();
            // SAFETY: allocated by this thread, freed exactly once.
            unsafe {
                match rng.range_u64(0..3) {
                    0 => cpu.free(p),
                    1 => cpu.free_sized(p, cfg.sizes[size_idx]),
                    _ => cpu.free_cookie(p, cookies[size_idx]),
                }
            }
            report.local_frees += 1;
        }
        // Park a block for some other thread to free.
        40..=47 => {
            if held.is_empty() {
                return;
            }
            let entry = held.swap_remove(rng.index(held.len()));
            let mut exchange = shared.exchange.lock().unwrap();
            if exchange.len() < cfg.exchange_capacity {
                exchange.push(entry);
                report.exchanges += 1;
            } else {
                drop(exchange);
                let p = NonNull::new(entry.0 as *mut u8).unwrap();
                // SAFETY: allocated by this thread, freed exactly once.
                unsafe { cpu.free_cookie(p, cookies[entry.1]) };
                report.local_frees += 1;
            }
        }
        // Free a block some other thread allocated.
        48..=57 => {
            let entry = {
                let mut exchange = shared.exchange.lock().unwrap();
                if exchange.is_empty() {
                    None
                } else {
                    let i = rng.index(exchange.len());
                    Some(exchange.swap_remove(i))
                }
            };
            if let Some((addr, size_idx)) = entry {
                let p = NonNull::new(addr as *mut u8).unwrap();
                // SAFETY: ownership came with the exchange entry.
                unsafe { cpu.free_cookie(p, cookies[size_idx]) };
                report.cross_frees += 1;
            }
        }
        // Multi-page allocation: bypasses layers 1-3 entirely.
        58..=59 => {
            if rng.range_u64(0..64) < cfg.large_weight {
                let pages = rng.range_usize(2..5);
                match cpu.alloc(pages * PAGE_SIZE) {
                    Ok(p) => {
                        held_large.push((p.as_ptr() as usize, pages));
                        report.large_allocs += 1;
                    }
                    Err(AllocError::OutOfMemory { .. }) => report.failed_allocs += 1,
                    Err(e) => panic!("unexpected large-alloc error: {e}"),
                }
            } else if let Some((addr, _)) = held_large.pop() {
                let p = NonNull::new(addr as *mut u8).unwrap();
                // SAFETY: allocated by this thread, freed exactly once.
                unsafe { cpu.free(p) };
            }
        }
        // Flush: pushes odd-sized chains into the global bucket list
        // (the regrouping path) — the same thing the low-memory path does.
        60 => {
            cpu.flush();
            report.flushes += 1;
        }
        // Cooperative poll: services drain requests posted by CPUs that
        // hit memory pressure.
        _ => cpu.poll(),
    }
}

fn publish_held(shared: &Shared, cookies: &[Cookie], tid: usize, held: &[Parked]) {
    let mut table = shared.held_tables[tid].lock().unwrap();
    table.iter_mut().for_each(|c| *c = 0);
    for &(_, size_idx) in held {
        table[cookies[size_idx].class_index()] += 1;
    }
}

/// Leader-only, all other threads quiescent: drives the maintenance
/// mailbox to empty and asserts it settled exactly. Immediately returns
/// on an arena without the core.
fn pump_maint(arena: &KmemArena) {
    while arena.maint_poll() > 0 {}
    if arena.maint_enabled() {
        assert_eq!(arena.maint_backlog(), 0, "pump left a mailbox backlog");
        let m = arena.snapshot().maint;
        assert_eq!(
            m.drained,
            m.posted - m.deduped,
            "maintenance work leaked across a pump"
        );
    }
}

/// Leader-only, with every thread quiescent at the barrier: structural
/// invariants plus exact block conservation. On a maintenance-core
/// arena the mailbox must already be pumped dry, and its counters must
/// balance exactly — deferred work can be *pending*, never lost.
fn checkpoint(
    arena: &KmemArena,
    cfg: &TortureConfig,
    shared: &Shared,
    cookies: &[Cookie],
    report: &mut TortureReport,
) {
    if arena.maint_enabled() {
        assert_eq!(
            arena.maint_backlog(),
            0,
            "maintenance mailbox not empty at a quiescent checkpoint"
        );
        let m = arena.snapshot().maint;
        assert_eq!(
            m.drained,
            m.posted - m.deduped,
            "maintenance work leaked: {} posted, {} deduped, {} drained",
            m.posted,
            m.deduped,
            m.drained
        );
    }
    verify_arena(arena);
    let mut held = vec![0usize; arena.nclasses()];
    for table in &shared.held_tables {
        for (class, count) in table.lock().unwrap().iter().enumerate() {
            held[class] += count;
        }
    }
    for &(_, size_idx) in shared.exchange.lock().unwrap().iter() {
        held[cookies[size_idx].class_index()] += 1;
    }
    if cfg.check_conservation {
        verify_conservation(arena, &held);
    }
    snapshot_checkpoint(arena, shared, &held);
    report.checkpoints += 1;
}

/// Leader-only snapshot consistency checks (every thread quiescent):
///
/// * every per-counter and cross-counter invariant, including the
///   quiescent-only equalities ([`KmemSnapshot::check_quiescent`]);
/// * monotonicity against the previous checkpoint's sweep;
/// * **delta exactness**: per class, the counters' net block flow since
///   the last checkpoint — `Σ_cpu (alloc - alloc_fail) - Σ_cpu free` —
///   must equal the change in blocks the torture run actually holds
///   (the driver's own ground truth).
fn snapshot_checkpoint(arena: &KmemArena, shared: &Shared, held: &[usize]) {
    let snap = arena.snapshot();
    snap.check_quiescent()
        .unwrap_or_else(|e| panic!("snapshot invariant failed: {e}"));
    let mut obs = shared.observer.lock().unwrap();
    snap.check_monotone_since(&obs.prev)
        .unwrap_or_else(|e| panic!("snapshot monotonicity failed: {e}"));
    let delta = snap.delta(&obs.prev);
    for (class, cs) in delta.classes.iter().enumerate() {
        let total = cs.cache_total();
        let flow = total.allocs_served() as i128 - total.free as i128;
        let held_change = held[class] as i128 - obs.prev_held[class] as i128;
        assert_eq!(
            flow, held_change,
            "class {class} (size {}): snapshot delta says net {flow} blocks \
             handed out since the last checkpoint, ground truth is {held_change}",
            cs.size
        );
    }
    obs.prev = snap;
    obs.prev_held.copy_from_slice(held);
}
