//! Integration: multiple kernel subsystems sharing one allocator.
//!
//! The paper's point about special-purpose allocators is that they reuse
//! the general-purpose allocator "at the binary level": STREAMS and the
//! lock manager both draw from the same arena here, concurrently, and the
//! arena must stay consistent and fully reclaimable.

use std::sync::Arc;

use kmem::verify::{verify_arena, verify_empty};
use kmem::{KmemArena, KmemConfig};
use kmem_dlm::workload::{run_worker, SharedLocks, WorkloadConfig};
use kmem_dlm::{Dlm, Mode};
use kmem_streams::StreamsAlloc;

#[test]
fn streams_and_dlm_share_one_arena() {
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    let dlm = Dlm::new(arena.clone(), 64);
    let sa = StreamsAlloc::new(arena.clone());
    let shared = SharedLocks::new();

    std::thread::scope(|s| {
        // Thread 1: lock-manager traffic.
        {
            let dlm = Arc::clone(&dlm);
            let arena = arena.clone();
            let shared = &shared;
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                let cfg = WorkloadConfig {
                    resources: 64,
                    ops: 20_000,
                    ..WorkloadConfig::default()
                };
                run_worker(&dlm, &cpu, shared, cfg, 1);
            });
        }
        // Thread 2: STREAMS message churn.
        {
            let arena = arena.clone();
            let sa = &sa;
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                for i in 0..20_000usize {
                    let m = sa.allocb(&cpu, 16 + (i % 1500)).expect("allocb");
                    // SAFETY: fresh message, exclusively ours; freed once.
                    unsafe {
                        assert!(sa.put(m, &[i as u8; 16]));
                        if i % 7 == 0 {
                            let dup = sa.dupb(&cpu, m).expect("dupb");
                            sa.freeb(&cpu, dup);
                        }
                        sa.freemsg(&cpu, m);
                    }
                }
            });
        }
        // Thread 3: raw allocator traffic in between.
        {
            let arena = arena.clone();
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                let mut held = Vec::new();
                for i in 0..20_000usize {
                    held.push(cpu.alloc(16 << (i % 6)).unwrap());
                    if held.len() > 40 {
                        let p = held.swap_remove(i % held.len());
                        // SAFETY: allocated above, freed once.
                        unsafe { cpu.free(p) };
                    }
                }
                for p in held {
                    // SAFETY: allocated above, freed once.
                    unsafe { cpu.free(p) };
                }
                cpu.flush();
            });
        }
    });

    let cpu = arena.register_cpu().unwrap();
    shared.drain(&dlm, &cpu);
    cpu.flush();
    arena.reclaim();
    verify_arena(&arena);
    verify_empty(&arena);
}

#[test]
fn dlm_contention_semantics_survive_shared_arena_pressure() {
    // A small arena forces the DLM and a memory hog to compete.
    let arena = KmemArena::new(KmemConfig::new(
        2,
        kmem_vm::SpaceConfig::new(4 << 20)
            .vmblk_shift(16)
            .phys_pages(96),
    ))
    .unwrap();
    let dlm = Dlm::new(arena.clone(), 16);
    let cpu = arena.register_cpu().unwrap();

    // Hold most of memory.
    let mut hog = Vec::new();
    for _ in 0..40 {
        match cpu.alloc(4096) {
            Ok(p) => hog.push(p),
            Err(_) => break,
        }
    }
    // Lock operations may fail with OOM but must never corrupt state.
    let mut handles = Vec::new();
    for n in 0..200u64 {
        match dlm.lock(&cpu, n % 8, Mode::Cr) {
            Ok((h, _)) => handles.push(h),
            Err(_) => break,
        }
    }
    for h in handles {
        dlm.unlock(&cpu, h);
    }
    for p in hog {
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
    }
    cpu.flush();
    arena.reclaim();
    verify_empty(&arena);
}
