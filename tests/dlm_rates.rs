//! Integration: the E6 miss-rate experiment lands in the paper's ranges.
//!
//! A scaled-down deterministic version of `kmem-bench --bin
//! dlm_miss_rates`, pinned as a regression test: if a change to the
//! layers or the workload pushes the rates out of the paper's envelope,
//! this fails.

use std::sync::Arc;

use kmem::{KmemArena, KmemConfig};
use kmem_dlm::workload::{run_worker, SharedLocks, WorkloadConfig};
use kmem_dlm::Dlm;
use kmem_vm::SpaceConfig;

#[test]
fn miss_rates_stay_in_the_papers_envelope() {
    let threads = 4;
    let arena = KmemArena::new(KmemConfig::new(threads, SpaceConfig::new(64 << 20))).unwrap();
    let dlm = Dlm::new(arena.clone(), 256);
    let shared = SharedLocks::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let dlm = Arc::clone(&dlm);
            let arena = arena.clone();
            let shared = &shared;
            let cfg = WorkloadConfig {
                resources: 512,
                ops: 60_000,
                working_set: 256,
                burst: 24,
                seed: 0xD1_5C0,
            };
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                run_worker(&dlm, &cpu, shared, cfg, t as u64);
            });
        }
    });
    let cpu = arena.register_cpu().unwrap();
    shared.drain(&dlm, &cpu);

    let stats = arena.stats();
    for size in [256usize, 512] {
        let c = stats.classes.iter().find(|c| c.size == size).unwrap();
        assert!(c.cpu_alloc.accesses > 10_000, "workload barely ran");
        let cpu_rate = c.cpu_alloc.miss_rate();
        let gbl_rate = c.gbl_alloc.miss_rate();
        let combined = c.combined_alloc_miss_rate();
        // Hard bounds from the paper's worst-case analysis.
        assert!(cpu_rate <= 0.10 + 1e-9, "{size}: cpu {cpu_rate}");
        // Paper-envelope (with slack: the scaled-down run is noisier and
        // thread scheduling varies): per-CPU 2.1-7.8 % → accept 1-9 %,
        // combined ≤ 0.67 % bound.
        assert!(
            (0.01..0.09).contains(&cpu_rate),
            "{size}: per-CPU miss rate {cpu_rate:.4} outside the envelope"
        );
        assert!(
            gbl_rate < 0.10,
            "{size}: global miss rate {gbl_rate:.4} too high"
        );
        assert!(
            combined < 0.0067,
            "{size}: combined {combined:.5} above the worst-case bound"
        );
    }
}
