//! Integration: the Figure 9 worst-case benchmark as a correctness test.
//!
//! "Note that an allocator that does no coalescing would fail to complete
//! this benchmark, having permanently fragmented all available memory into
//! the smallest possible blocks."

use kmem::verify::verify_empty;
use kmem::{AllocError, KmemArena, KmemConfig};
use kmem_baselines::MkAllocator;
use kmem_vm::{SpaceConfig, PAGE_SIZE};

/// Allocates `size`-byte blocks until OOM, returns them all, and reports
/// how many were obtained.
fn exhaust(cpu: &kmem::CpuHandle, size: usize) -> usize {
    let mut held = Vec::new();
    loop {
        match cpu.alloc(size) {
            Ok(p) => held.push(p),
            Err(AllocError::OutOfMemory { .. }) => break,
            Err(e) => panic!("{e}"),
        }
    }
    let n = held.len();
    for p in held {
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free_sized(p, size) };
    }
    n
}

#[test]
fn sweep_all_sizes_without_reboot() {
    // 1 MB of physical memory over 64 KB vmblks.
    let a = KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(16 << 20).vmblk_shift(16).phys_pages(256),
    ))
    .unwrap();
    let cpu = a.register_cpu().unwrap();
    let mut per_size = Vec::new();
    for shift in 4..=14 {
        let size = 1usize << shift;
        let n = exhaust(&cpu, size);
        assert!(n > 0, "no blocks at size {size}");
        per_size.push((size, n));
        // The coalescing invariant after every pass: flush + reclaim must
        // return every frame (the strong form of "no reboot needed").
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }
    // Block counts at least halve as size doubles (modulo per-page and
    // per-vmblk overhead).
    for w in per_size.windows(2) {
        let ((s0, n0), (s1, n1)) = (w[0], w[1]);
        assert!(
            n1 <= n0,
            "larger blocks must be fewer: {s0}B -> {n0}, {s1}B -> {n1}"
        );
    }
    // And the sweep is repeatable — run the smallest size again at full
    // yield (second pass sees the same capacity as the first).
    let again = exhaust(&cpu, 16);
    assert_eq!(again, per_size[0].1, "capacity shrank across the sweep");
    cpu.flush();
    a.reclaim();
    verify_empty(&a);
}

#[test]
fn sweep_in_descending_order_also_works() {
    let a = KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(16 << 20).vmblk_shift(16).phys_pages(128),
    ))
    .unwrap();
    let cpu = a.register_cpu().unwrap();
    for shift in (4..=13).rev() {
        assert!(exhaust(&cpu, 1 << shift) > 0);
        cpu.flush();
        a.reclaim();
        verify_empty(&a);
    }
}

#[test]
fn mk_fails_the_sweep_by_stranding_memory() {
    let mk = MkAllocator::new(4 << 20, 64);
    // First pass: all memory into 16-byte buckets.
    let mut held = Vec::new();
    while let Some(p) = mk.malloc(16) {
        held.push(p);
    }
    let first = held.len();
    assert!(first > 0);
    for p in held {
        // SAFETY: allocated above, freed once.
        unsafe { mk.free(p) };
    }
    // Everything freed — yet the next size gets nothing: this is the
    // failure the paper describes ("necessary to reboot the system
    // between runs of each block size").
    assert_eq!(mk.space().phys().in_use(), 64);
    assert!(mk.malloc(32).is_none());
    assert!(mk.malloc(PAGE_SIZE + 1).is_none());
    // The 16-byte size itself still works (its freelists survived).
    assert!(mk.malloc(16).is_some());
}
