//! Property-based tests: randomized traffic against model invariants.

use kmem::verify::{verify_arena, verify_conservation, verify_empty};
use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{MkAllocator, OldKma};
use kmem_testkit::{check, shrink_u64, shrink_usize, shrink_vec, vec_of, Rng};
use kmem_vm::SpaceConfig;

/// One scripted allocator operation.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes.
    Alloc(usize),
    /// Free the i-th live block (modulo the live count).
    Free(usize),
}

fn gen_op(max_size: usize) -> impl Fn(&mut Rng) -> Op {
    // Weighted 3:2, matching the original proptest strategy.
    move |rng| match rng.range_u64(0..5) {
        0..=2 => Op::Alloc(rng.range_usize(1..max_size + 1)),
        _ => Op::Free(rng.range_usize(0..4096)),
    }
}

fn shrink_op(op: &Op) -> Vec<Op> {
    match *op {
        Op::Alloc(s) => shrink_usize(s, 1).into_iter().map(Op::Alloc).collect(),
        Op::Free(i) => shrink_usize(i, 0).into_iter().map(Op::Free).collect(),
    }
}

fn small_arena() -> KmemArena {
    KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(8 << 20).vmblk_shift(16),
    ))
    .unwrap()
}

/// Computes a per-block fill byte from its sequence number.
fn fill_byte(seq: usize) -> u8 {
    (seq.wrapping_mul(167) % 251) as u8 + 1
}

/// Memory handed out is disjoint, retains its contents until freed,
/// and every structural invariant holds afterwards.
#[test]
fn random_ops_preserve_contents_and_invariants() {
    check(
        "random_ops_preserve_contents_and_invariants",
        64,
        vec_of(1..400, gen_op(8192)),
        |ops| shrink_vec(ops, shrink_op),
        |ops| {
            let a = small_arena();
            let cpu = a.register_cpu().unwrap();
            let mut live: Vec<(std::ptr::NonNull<u8>, usize, usize)> = Vec::new();
            let mut seq = 0usize;
            for op in ops {
                match *op {
                    Op::Alloc(size) => {
                        let Ok(p) = cpu.alloc(size) else { continue };
                        // SAFETY: fresh block of at least `size` bytes.
                        unsafe { core::ptr::write_bytes(p.as_ptr(), fill_byte(seq), size) };
                        live.push((p, size, seq));
                        seq += 1;
                    }
                    Op::Free(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let (p, size, s) = live.swap_remove(i % live.len());
                        // The fill pattern must have survived: no other block
                        // overlapped this one.
                        // SAFETY: `p` is a live block of `size` bytes.
                        let slice = unsafe { core::slice::from_raw_parts(p.as_ptr(), size) };
                        assert!(
                            slice.iter().all(|&b| b == fill_byte(s)),
                            "contents of block {s} were corrupted"
                        );
                        // SAFETY: allocated above, freed once.
                        unsafe { cpu.free_sized(p, size) };
                    }
                }
            }
            // Count what we still hold, per class, for conservation.
            let mut held = vec![0usize; 9];
            let mut large_held = 0usize;
            for (_, size, _) in &live {
                match size {
                    0..=16 => held[0] += 1,
                    17..=32 => held[1] += 1,
                    33..=64 => held[2] += 1,
                    65..=128 => held[3] += 1,
                    129..=256 => held[4] += 1,
                    257..=512 => held[5] += 1,
                    513..=1024 => held[6] += 1,
                    1025..=2048 => held[7] += 1,
                    2049..=4096 => held[8] += 1,
                    _ => large_held += 1,
                }
            }
            verify_arena(&a);
            verify_conservation(&a, &held);
            // Cleanup and the strongest invariant: everything returns.
            for (p, size, _) in live {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, size) };
            }
            let _ = large_held;
            cpu.flush();
            a.reclaim();
            verify_empty(&a);
            Ok(())
        },
    );
}

/// Freeing in any order fully coalesces: the arena always returns to
/// empty, regardless of allocation size mix or free order.
#[test]
fn any_free_order_coalesces_to_empty() {
    check(
        "any_free_order_coalesces_to_empty",
        64,
        |rng: &mut Rng| {
            (
                vec_of(1..200, |rng| rng.range_usize(1..16385))(rng),
                rng.next_u64(),
            )
        },
        |(sizes, seed)| {
            shrink_vec(sizes, |&s| shrink_usize(s, 1))
                .into_iter()
                .map(|v| (v, *seed))
                .chain(shrink_u64(*seed, 0).into_iter().map(|x| (sizes.clone(), x)))
                .collect()
        },
        |(sizes, order_seed)| {
            let a = small_arena();
            let cpu = a.register_cpu().unwrap();
            let mut blocks: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
            for &s in sizes {
                if let Ok(p) = cpu.alloc(s) {
                    blocks.push((p, s));
                }
            }
            // Deterministic shuffle from the seed.
            let mut x = order_seed | 1;
            let mut i = blocks.len();
            while i > 1 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                i -= 1;
                blocks.swap(i, (x as usize) % (i + 1));
            }
            for (p, s) in blocks {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, s) };
            }
            cpu.flush();
            a.reclaim();
            verify_empty(&a);
            Ok(())
        },
    );
}

/// The per-CPU cache bounds hold after any operation sequence:
/// each half of the split freelist stays ≤ target.
#[test]
fn split_freelist_bounds_always_hold() {
    check(
        "split_freelist_bounds_always_hold",
        64,
        vec_of(1..300, gen_op(4096)),
        |ops| shrink_vec(ops, shrink_op),
        |ops| {
            let a = small_arena();
            let cpu = a.register_cpu().unwrap();
            let mut live: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
            for op in ops {
                match *op {
                    Op::Alloc(size) => {
                        if let Ok(p) = cpu.alloc(size) {
                            live.push((p, size));
                        }
                    }
                    Op::Free(i) => {
                        if let Some(&(p, s)) = live.get(i % live.len().max(1)) {
                            live.swap_remove(i % live.len());
                            // SAFETY: allocated above, freed once.
                            unsafe { cpu.free_sized(p, s) };
                        }
                    }
                }
                for class in 0..9 {
                    let (main, aux) = cpu.cache_shape(class);
                    let target = [10, 10, 10, 10, 10, 10, 8, 4, 2][class];
                    assert!(main <= target, "class {class} main {main}");
                    assert!(aux <= target, "class {class} aux {aux}");
                }
            }
            for (p, s) in live {
                // SAFETY: allocated above, freed once.
                unsafe { cpu.free_sized(p, s) };
            }
            cpu.flush();
            a.reclaim();
            verify_empty(&a);
            Ok(())
        },
    );
}

/// oldkma's Cartesian tree and boundary tags survive arbitrary traffic
/// and always coalesce back to the single extent block.
#[test]
fn oldkma_tree_invariants_under_random_traffic() {
    check(
        "oldkma_tree_invariants_under_random_traffic",
        64,
        vec_of(1..300, gen_op(2000)),
        |ops| shrink_vec(ops, shrink_op),
        |ops| {
            let a = OldKma::new(1 << 20, 256);
            let baseline = {
                let p = a.malloc(16).unwrap();
                // SAFETY: allocated above, freed once.
                unsafe { OldKma::free(&a, p) };
                a.free_bytes()
            };
            let mut live = Vec::new();
            for op in ops {
                match *op {
                    Op::Alloc(size) => {
                        if let Some(p) = a.malloc(size) {
                            live.push(p);
                        }
                    }
                    Op::Free(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let p = live.swap_remove(i % live.len());
                        // SAFETY: allocated above, freed once.
                        unsafe { OldKma::free(&a, p) };
                    }
                }
            }
            a.verify();
            for p in live {
                // SAFETY: allocated above, freed once.
                unsafe { OldKma::free(&a, p) };
            }
            a.verify();
            if a.free_bytes() != baseline {
                return Err(format!(
                    "free bytes {} != baseline {baseline}",
                    a.free_bytes()
                ));
            }
            Ok(())
        },
    );
}

/// MK never loses blocks: everything freed is allocatable again at the
/// same size, and bucket accounting stays exact.
#[test]
fn mk_conserves_per_bucket() {
    check(
        "mk_conserves_per_bucket",
        64,
        vec_of(1..30, |rng| {
            (rng.range_u64(4..13) as u32, rng.range_usize(1..40))
        }),
        |rounds| {
            shrink_vec(rounds, |&(shift, count)| {
                shrink_usize(count, 1)
                    .into_iter()
                    .map(|c| (shift, c))
                    .collect()
            })
        },
        |rounds| {
            let a = MkAllocator::new(4 << 20, 512);
            for &(shift, count) in rounds {
                let size = 1usize << shift;
                let mut held = Vec::new();
                for _ in 0..count {
                    match a.malloc(size) {
                        Some(p) => held.push(p),
                        None => break,
                    }
                }
                let n = held.len();
                for p in held {
                    // SAFETY: allocated above, freed once.
                    unsafe { a.free(p) };
                }
                // Immediately reallocatable at the same size.
                let mut again = Vec::new();
                for _ in 0..n {
                    again.push(a.malloc(size).expect("block lost"));
                }
                for p in again {
                    // SAFETY: allocated above, freed once.
                    unsafe { a.free(p) };
                }
            }
            Ok(())
        },
    );
}
