//! Maintenance core, end to end: parity when disabled, the mailbox-routed
//! pressure drain protocol, conservation under deferred puts, and the
//! background pump thread.

use kmem::verify::{verify_arena, verify_empty};
use kmem::{AllocError, KmemArena, KmemConfig, MaintConfig};
use kmem_vm::SpaceConfig;

const SIZE: usize = 1024;

fn starved_config() -> KmemConfig {
    // 64 frames (256 KB) against unbounded demand: a few hundred
    // allocations exhaust the pool outright.
    KmemConfig::new(2, SpaceConfig::new(16 << 20).phys_pages(64).vmblk_shift(16))
}

/// Allocates until the pool is dry, returning everything handed out.
fn drain_pool(cpu: &kmem::CpuHandle) -> Vec<std::ptr::NonNull<u8>> {
    let mut held = Vec::new();
    loop {
        match cpu.alloc(SIZE) {
            Ok(p) => held.push(p),
            Err(AllocError::OutOfMemory { .. }) => return held,
            Err(e) => panic!("starvation must surface as OutOfMemory, got {e}"),
        }
    }
}

/// A deterministic single-threaded churn that exercises every slow-path
/// site: refills, overflow returns, odd-chain flushes, and a reclaim.
fn churn(arena: &KmemArena) {
    let cpu = arena.register_cpu().unwrap();
    let mut held = Vec::new();
    for i in 0..4000usize {
        let size = 16 << (i % 5);
        held.push((cpu.alloc(size).unwrap(), size));
        if held.len() > 48 {
            let (p, s) = held.swap_remove((i * 7) % held.len());
            // SAFETY: allocated above, freed exactly once.
            unsafe { cpu.free_sized(p, s) };
        }
    }
    for (p, s) in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, s) };
    }
    cpu.flush();
}

/// Satellite regression: with the maintenance core compiled in but
/// *disabled* (the default), every slow-path site behaves exactly as
/// before — the maint counters stay zero, the pump is a no-op, and two
/// identical runs produce byte-identical counter sweeps.
#[test]
fn disabled_core_is_byte_for_byte_inline() {
    let run = || {
        let arena = KmemArena::new(KmemConfig::small()).unwrap();
        churn(&arena);
        assert!(!arena.maint_enabled());
        assert_eq!(arena.maint_poll(), 0, "disabled pump drains nothing");
        assert_eq!(arena.maint_backlog(), 0);
        assert!(arena.start_maint_thread().is_none());
        arena.snapshot().to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "disabled maintenance must not perturb determinism");
    // The slow paths really ran inline: spills reached the page layer and
    // the maint group reports disabled-all-zeros.
    assert!(a.contains("\"maint\":{\"enabled\":false,\"posted\":0,\"deduped\":0,\"drained\":0,"));
    let arena = KmemArena::new(KmemConfig::small()).unwrap();
    churn(&arena);
    let snap = arena.snapshot();
    let put: u64 = snap.classes.iter().map(|c| c.global.put).sum();
    assert!(put > 0, "churn must reach the global layer");
    assert_eq!(snap.maint, Default::default());
}

/// Satellite regression: rung 1 of the pressure ladder posts its drain
/// requests through the mailbox exactly once per climb — repeated failures
/// re-apply the deepest rung without posting more work.
#[test]
fn pressure_climb_posts_one_drain_request_per_climb() {
    let arena = KmemArena::new(starved_config().maint(MaintConfig::on())).unwrap();
    let cpu0 = arena.register_cpu().unwrap();
    let cpu1 = arena.register_cpu().unwrap();

    let held = drain_pool(&cpu0);
    assert!(held.len() > 100, "only {} blocks before dry", held.len());
    assert_eq!(arena.snapshot().pressure_level, 3);

    // The climb's posts are in the mailbox; nothing has run yet, so the
    // other CPU has not been asked to drain.
    let posted_after_climb = arena.snapshot().maint.posted;
    assert!(posted_after_climb > 0, "the climb must post work");
    assert_eq!(arena.pending_drains(), 0, "requests sit in the mailbox");

    // Repeated failures re-apply rung 3 inline and post *nothing* new.
    assert!(cpu0.alloc(SIZE).is_err());
    assert!(cpu0.alloc(SIZE).is_err());
    let snap = arena.snapshot();
    assert!(snap.pressure_reapplied >= 2);
    assert_eq!(
        snap.maint.posted, posted_after_climb,
        "re-applied failures must not re-post drain requests"
    );

    // Pumping runs the DrainCpu item: exactly the one other CPU is asked.
    arena.maint_poll();
    assert_eq!(arena.pending_drains(), 1, "ncpus - 1 drain flags per climb");
    cpu1.poll();
    assert_eq!(arena.pending_drains(), 0);

    // Recover, relax the ladder to calm, and climb again: the second climb
    // posts a fresh round (the dedup keys cleared when the first drained).
    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu0.free_sized(p, SIZE) };
    }
    arena.maint_poll();
    for _ in 0..4 {
        let p = cpu0.alloc(SIZE).expect("service resumes after refill");
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu0.free_sized(p, SIZE) };
        cpu0.flush();
        arena.maint_poll();
    }
    assert_eq!(arena.snapshot().pressure_level, 0);
    let posted_between = arena.snapshot().maint.posted;
    let held = drain_pool(&cpu0);
    assert_eq!(arena.snapshot().pressure_level, 3);
    assert!(
        arena.snapshot().maint.posted > posted_between,
        "a fresh climb must post a fresh drain round"
    );
    arena.maint_poll();
    assert_eq!(arena.pending_drains(), 1, "one request per climb, again");
    cpu1.poll();

    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu0.free_sized(p, SIZE) };
    }
    cpu0.flush();
    arena.maint_poll();
    arena.reclaim();
    verify_empty(&arena);
}

/// With the core enabled, deferred puts plus the explicit pump conserve
/// every block, settle the mailbox (`drained == posted - deduped`), and
/// the epoch-batched drain actually runs.
#[test]
fn maint_pump_conserves_blocks_and_settles_the_mailbox() {
    let arena = KmemArena::new(KmemConfig::small().maint(MaintConfig::on())).unwrap();
    assert!(arena.maint_enabled());
    churn(&arena);
    churn(&arena);
    // Pump to quiescence: all deferred trims/regroups/spills run.
    while arena.maint_poll() > 0 {}
    let snap = arena.snapshot();
    assert_eq!(arena.maint_backlog(), 0, "mailbox empty at quiescence");
    assert_eq!(
        snap.maint.drained,
        snap.maint.posted - snap.maint.deduped,
        "every undeduplicated post must drain"
    );
    assert!(snap.maint.posted > 0, "churn must post maintenance work");
    assert!(snap.maint.deduped > 0, "identical crossings must dedupe");
    snap.check_quiescent()
        .unwrap_or_else(|e| panic!("quiescent invariants with maint on: {e}"));
    verify_arena(&arena);
    arena.reclaim();
    let snap = arena.snapshot();
    assert!(
        snap.maint.batch_drains > 0,
        "reclaim must use the epoch-batched drain"
    );
    assert!(snap.maint.batched_chains >= snap.maint.batch_drains);
    verify_empty(&arena);
}

/// The production shape: a background maintenance thread pumps while
/// several CPUs churn concurrently. Dropping the pump settles everything.
#[test]
fn maint_thread_keeps_up_with_concurrent_churn() {
    let arena = KmemArena::new(KmemConfig::small().maint(MaintConfig::on())).unwrap();
    let pump = arena.start_maint_thread().expect("core is enabled");
    std::thread::scope(|s| {
        for _ in 0..3 {
            let handle = arena.register_cpu().unwrap();
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..3000usize {
                    let size = 16 << (i % 5);
                    held.push((handle.alloc(size).unwrap(), size));
                    if held.len() > 32 {
                        let (p, s) = held.swap_remove(i % held.len());
                        // SAFETY: allocated above, freed exactly once.
                        unsafe { handle.free_sized(p, s) };
                    }
                }
                for (p, s) in held {
                    // SAFETY: allocated above, freed exactly once.
                    unsafe { handle.free_sized(p, s) };
                }
            });
        }
    });
    // All CPU handles are dropped (their caches flushed); stop the pump,
    // which runs one final drain before joining.
    drop(pump);
    let snap = arena.snapshot();
    assert_eq!(arena.maint_backlog(), 0, "final sweep leaves nothing");
    assert_eq!(snap.maint.drained, snap.maint.posted - snap.maint.deduped);
    verify_arena(&arena);
    arena.reclaim();
    verify_empty(&arena);
}
