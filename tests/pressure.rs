//! The memory-pressure ladder, end to end: starve the physical pool,
//! watch the escalation state machine climb through all three rungs,
//! refill, and watch service resume and the ladder relax back to calm.

use kmem::verify::{verify_arena, verify_empty};
use kmem::{AllocError, KmemArena, KmemConfig};
use kmem_vm::SpaceConfig;

const SIZE: usize = 1024;

fn starved_arena() -> KmemArena {
    // 64 frames (256 KB) against unbounded demand: a few hundred
    // allocations exhaust the pool outright.
    KmemArena::new(KmemConfig::new(
        1,
        SpaceConfig::new(16 << 20).phys_pages(64).vmblk_shift(16),
    ))
    .unwrap()
}

/// Allocates until the pool is dry, returning everything handed out.
fn drain_pool(cpu: &kmem::CpuHandle) -> Vec<std::ptr::NonNull<u8>> {
    let mut held = Vec::new();
    loop {
        match cpu.alloc(SIZE) {
            Ok(p) => held.push(p),
            Err(AllocError::OutOfMemory { requested }) => {
                assert_eq!(requested, SIZE, "typed error reports the request");
                return held;
            }
            Err(e) => panic!("starvation must surface as OutOfMemory, got {e}"),
        }
    }
}

/// Starvation drives the ladder through every rung; refilling lets it
/// step back down (one hysteresis-gated level per recovered allocation)
/// until the arena is calm, quiescent, and fully reclaimable.
#[test]
fn pressure_ladder_climbs_all_rungs_and_relaxes() {
    let arena = starved_arena();
    let cpu = arena.register_cpu().unwrap();

    let held = drain_pool(&cpu);
    assert!(held.len() > 100, "only {} blocks before dry", held.len());

    // The pool is empty, so the failing allocation maps straight to the
    // deepest watermark: one climb enters rungs 1, 2 and 3 together.
    let snap = arena.snapshot();
    assert_eq!(snap.pressure_level, 3, "starved arena must sit at rung 3");
    for (i, &count) in snap.pressure_escalations.iter().enumerate() {
        assert!(count >= 1, "rung {} never entered: {count}", i + 1);
    }
    // Continued failures re-apply the deepest rung instead of re-posting
    // drains and re-flushing.
    assert!(cpu.alloc(SIZE).is_err());
    assert!(cpu.alloc(SIZE).is_err());
    let snap = arena.snapshot();
    assert!(
        snap.pressure_reapplied >= 2,
        "repeated failures must re-apply, not re-climb: {}",
        snap.pressure_reapplied
    );

    // Refill the pool: service resumes immediately...
    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, SIZE) };
    }
    // ...and every successful slow-path allocation steps the ladder down
    // one (hysteresis-checked) level. Flushing between allocations forces
    // the slow path; cache hits never touch the ladder.
    for _ in 0..4 {
        let p = cpu.alloc(SIZE).expect("service must resume after refill");
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, SIZE) };
        cpu.flush();
    }
    let snap = arena.snapshot();
    assert_eq!(snap.pressure_level, 0, "recovered arena must relax to calm");
    assert!(
        snap.pressure_deescalations >= 3,
        "three rungs up need three steps down: {}",
        snap.pressure_deescalations
    );

    snap.check_quiescent()
        .unwrap_or_else(|e| panic!("quiescent invariants after recovery: {e}"));
    verify_arena(&arena);
    arena.reclaim();
    verify_empty(&arena);
}

/// `alloc_sleep` on a starved pool: bounded spin/yield retries, one
/// `sleep_retries` count per failed attempt, and a typed error when the
/// attempts run out — then success as soon as memory comes back.
#[test]
fn alloc_sleep_backs_off_and_reports_retries() {
    let arena = starved_arena();
    let cpu = arena.register_cpu().unwrap();
    let held = drain_pool(&cpu);

    let err = cpu.alloc_sleep(SIZE, 5).expect_err("pool is dry");
    assert!(matches!(err, AllocError::OutOfMemory { requested: s } if s == SIZE));

    let class = arena.cookie_for(SIZE).unwrap().class_index();
    let snap = arena.snapshot();
    let total = snap.classes[class].cache_total();
    assert_eq!(total.sleep_retries, 5, "one retry count per failed attempt");
    assert!(
        total.sleep_retries <= total.alloc_fail,
        "retries are a subset of failures"
    );

    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, SIZE) };
    }
    let p = cpu.alloc_sleep(SIZE, 5).expect("memory is back");
    // SAFETY: allocated above, freed exactly once.
    unsafe { cpu.free_sized(p, SIZE) };
    let snap = arena.snapshot();
    assert_eq!(
        snap.classes[class].cache_total().sleep_retries,
        5,
        "successful attempts add no retries"
    );

    cpu.flush();
    arena.reclaim();
    verify_empty(&arena);
}
