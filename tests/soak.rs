//! Long-running soak tests (run explicitly: `cargo test --release -- --ignored`).
//!
//! These are the marathon versions of the integration scenarios: hours of
//! simulated uptime compressed into minutes of mixed traffic, with full
//! verification after every phase. They are `#[ignore]`d so `cargo test`
//! stays fast; CI or a nervous maintainer can run them on demand.

use std::sync::atomic::{AtomicU64, Ordering};

use kmem::verify::{verify_arena, verify_empty};
use kmem::{HardenedConfig, KmemArena, KmemConfig, MaintConfig};
use kmem_dlm::workload::{run_worker, SharedLocks, WorkloadConfig};
use kmem_dlm::Dlm;
use kmem_streams::StreamsAlloc;
use kmem_vm::SpaceConfig;

/// NUMA shard count for the soak arenas, from `KMEM_SOAK_NODES` (default
/// 1 — the flat machine). `scripts/soak.sh` rotates this 1/2/4 so the
/// steal path and the fully sharded layout both get marathon coverage.
/// Clamped to `ncpus` because every node needs at least one CPU.
fn soak_nodes(ncpus: usize) -> usize {
    std::env::var("KMEM_SOAK_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, ncpus)
}

/// Arms every hardened defense when `KMEM_SOAK_HARDENED` is set and
/// nonzero (`scripts/soak.sh` rotates it round by round): the marathon
/// traffic then runs over encoded links, poisoning, randomized carve,
/// and the quarantine, and must never trip a false detection.
fn soak_hardened(cfg: KmemConfig) -> KmemConfig {
    match std::env::var("KMEM_SOAK_HARDENED") {
        Ok(v) if !matches!(v.trim(), "" | "0") => {
            cfg.hardened(HardenedConfig::full(0x534f_414b)) // "SOAK"
        }
        _ => cfg,
    }
}

/// Routes slow-path maintenance through the background core when
/// `KMEM_SOAK_MAINT` is set and nonzero (`scripts/soak.sh` rotates it):
/// the marathon traffic then runs beside a live maintenance thread, and
/// teardown asserts the mailbox settled exactly.
fn soak_maint(cfg: KmemConfig) -> KmemConfig {
    match std::env::var("KMEM_SOAK_MAINT") {
        Ok(v) if !matches!(v.trim(), "" | "0") => cfg.maint(MaintConfig::on()),
        _ => cfg,
    }
}

/// Settles the mailbox at a quiescent point. The background thread may
/// hold the single-consumer drain flag mid-poll, in which case our poll
/// returns 0 while work remains — so spin on the backlog, not the poll
/// count, and let whichever side owns the flag finish the drain.
fn settle_maint(arena: &KmemArena) {
    while arena.maint_backlog() > 0 {
        if arena.maint_poll() == 0 {
            std::thread::yield_now();
        }
    }
    // Deferred puts from the drained work never re-post (maintenance
    // handlers do not allocate), so one empty backlog is final.
    let m = arena.snapshot().maint;
    assert_eq!(
        m.drained,
        m.posted - m.deduped,
        "maintenance work leaked across the soak: {m:?}"
    );
}

#[test]
#[ignore = "soak test: minutes of runtime; run with --ignored"]
fn million_op_mixed_soak() {
    let arena = KmemArena::new(soak_maint(soak_hardened(
        KmemConfig::new(4, SpaceConfig::new(64 << 20)).nodes(soak_nodes(4)),
    )))
    .unwrap();
    let pump = arena.start_maint_thread();
    let ops_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let arena = arena.clone();
            let ops_done = &ops_done;
            s.spawn(move || {
                let cpu = arena.register_cpu().unwrap();
                let mut held: Vec<(usize, usize)> = Vec::new();
                let mut x = 0x9E3779B9u64 ^ t;
                for i in 0..1_000_000usize {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // A size mix spanning classes and multi-page blocks.
                    let size = match x % 100 {
                        0..=69 => 16usize << (x % 9),
                        70..=94 => 1000 + (x % 3000) as usize,
                        _ => 4096 * (1 + (x % 4) as usize),
                    };
                    if held.len() > 128 || (x.is_multiple_of(2) && !held.is_empty()) {
                        let (addr, sz) = held.swap_remove((x as usize) % held.len());
                        let p = std::ptr::NonNull::new(addr as *mut u8).unwrap();
                        // SAFETY: allocated below, freed exactly once.
                        unsafe { cpu.free_sized(p, sz) };
                    }
                    match cpu.alloc(size) {
                        Ok(p) => held.push((p.as_ptr() as usize, size)),
                        Err(e) => panic!("op {i}: {e}"),
                    }
                    ops_done.fetch_add(1, Ordering::Relaxed);
                }
                for (addr, sz) in held {
                    let p = std::ptr::NonNull::new(addr as *mut u8).unwrap();
                    // SAFETY: allocated above, freed exactly once.
                    unsafe { cpu.free_sized(p, sz) };
                }
            });
        }
    });
    assert_eq!(ops_done.load(Ordering::Relaxed), 4_000_000);
    drop(pump);
    settle_maint(&arena);
    arena.reclaim();
    verify_empty(&arena);
}

#[test]
#[ignore = "soak test: minutes of runtime; run with --ignored"]
fn subsystem_cohabitation_soak() {
    let arena = KmemArena::new(soak_maint(soak_hardened(
        KmemConfig::new(3, SpaceConfig::new(64 << 20)).nodes(soak_nodes(3)),
    )))
    .unwrap();
    let pump = arena.start_maint_thread();
    let dlm = Dlm::new(arena.clone(), 256);
    let sa = StreamsAlloc::new(arena.clone());
    let shared = SharedLocks::new();
    for round in 0..10 {
        std::thread::scope(|s| {
            {
                let dlm = std::sync::Arc::clone(&dlm);
                let arena = arena.clone();
                let shared = &shared;
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    let cfg = WorkloadConfig {
                        ops: 100_000,
                        seed: round,
                        ..WorkloadConfig::default()
                    };
                    run_worker(&dlm, &cpu, shared, cfg, round);
                });
            }
            {
                let arena = arena.clone();
                let sa = &sa;
                s.spawn(move || {
                    let cpu = arena.register_cpu().unwrap();
                    for i in 0..100_000usize {
                        let m = sa.allocb(&cpu, 1 + (i % 2000)).unwrap();
                        // SAFETY: fresh message; freed exactly once.
                        unsafe {
                            if i % 5 == 0 {
                                if let Some(d) = sa.dupb(&cpu, m) {
                                    sa.freeb(&cpu, d);
                                }
                            }
                            sa.freemsg(&cpu, m);
                        }
                    }
                });
            }
        });
        let cpu = arena.register_cpu().unwrap();
        shared.drain(&dlm, &cpu);
        drop(cpu);
        // Deferred puts can hold the global layer over its trim bound
        // until the mailbox settles, so settle before walking invariants.
        settle_maint(&arena);
        arena.reclaim();
        verify_arena(&arena);
    }
    drop(pump);
    settle_maint(&arena);
    arena.reclaim();
    verify_empty(&arena);
}
