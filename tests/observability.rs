//! Snapshot/observability soundness: live sampling under concurrency and
//! exact delta accounting at quiescence.
//!
//! The snapshot layer promises two different strengths of consistency
//! (see `kmem::snapshot`): bounds that hold on *live* samples taken while
//! every CPU is mid-churn, and exact equalities once the arena is
//! quiescent. Both are exercised here — the live half with a dedicated
//! sampler thread racing real allocator traffic, the exact half against
//! ground truth an observer keeps by hand.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};

use kmem::{KmemArena, KmemConfig};
use kmem_vm::SpaceConfig;

fn arena(ncpus: usize) -> KmemArena {
    KmemArena::new(KmemConfig::new(ncpus, SpaceConfig::new(32 << 20))).unwrap()
}

/// A sampler thread polls `snapshot()` continuously while worker threads
/// churn allocations, frees, cross-thread frees, and flushes. Every live
/// sample must satisfy the cross-counter bounds (`miss <= access` per
/// (CPU, class), refill accounting, global-pool outcome bounds) and be
/// monotone over the previous sample; the final post-join snapshot must
/// satisfy the stricter quiescent equalities.
#[test]
fn live_snapshots_under_churn_hold_their_invariants() {
    let a = arena(4);
    let stop = AtomicBool::new(false);
    let mut prev = a.snapshot();
    std::thread::scope(|s| {
        for t in 0..3 {
            let a = a.clone();
            let stop = &stop;
            s.spawn(move || {
                let cpu = a.register_cpu().unwrap();
                let mut held: Vec<(NonNull<u8>, usize)> = Vec::new();
                let mut x = 0x9E37_79B9u64.wrapping_add(t);
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = 16usize << (x % 6);
                    if held.len() > 256 {
                        let (p, sz) = held.swap_remove((x as usize) % held.len());
                        // SAFETY: allocated below, freed exactly once.
                        unsafe { cpu.free_sized(p, sz) };
                    } else if let Ok(p) = cpu.alloc(size) {
                        held.push((p, size));
                    }
                    if x % 4096 == 0 {
                        cpu.flush();
                    }
                }
                for (p, sz) in held {
                    // SAFETY: allocated above, freed exactly once.
                    unsafe { cpu.free_sized(p, sz) };
                }
            });
        }

        // The sampler is *not* a registered CPU: snapshots must work from
        // any thread, without a claim, while the writers keep writing.
        let prev = &mut prev;
        for i in 0..300 {
            let snap = a.snapshot();
            snap.check_live()
                .unwrap_or_else(|e| panic!("live sample {i}: {e}"));
            snap.check_monotone_since(prev)
                .unwrap_or_else(|e| panic!("live sample {i}: {e}"));
            *prev = snap;
            if i % 50 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let end = a.snapshot();
    end.check_quiescent().unwrap();
    end.check_monotone_since(&prev).unwrap();
    // Everything was freed and every worker's handle-drop flushed: the
    // counters must balance exactly.
    assert_eq!(end.total_allocs() - failed(&end), end.total_frees());
}

fn failed(s: &kmem::KmemSnapshot) -> u64 {
    s.classes
        .iter()
        .map(|c| c.per_cpu.iter().map(|p| p.alloc_fail).sum::<u64>())
        .sum()
}

/// Quiescent deltas are exact: an observer that counts its own operations
/// by hand must see precisely those counts — no more, no fewer — in the
/// delta between two snapshots, attributed to the right CPU and class.
#[test]
fn quiescent_deltas_match_hand_counted_ground_truth() {
    let a = arena(2);
    let cpu = a.register_cpu().unwrap();
    // Warm up with arbitrary traffic so the baseline is non-zero.
    let warm: Vec<_> = (0..100).map(|_| cpu.alloc(64).unwrap()).collect();
    for p in warm {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free(p) };
    }

    let before = a.snapshot();
    let class64 = (0..before.nclasses())
        .find(|&i| before.classes[i].size == 64)
        .unwrap();
    let mut held = Vec::new();
    for _ in 0..777 {
        held.push(cpu.alloc(64).unwrap());
    }
    for _ in 0..333 {
        let p = held.pop().unwrap();
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free(p) };
    }
    let after = a.snapshot();

    let delta = after.delta(&before);
    let mine = delta.cpu_class(cpu.cpu().index(), class64);
    assert_eq!(mine.alloc, 777);
    assert_eq!(mine.free, 333);
    assert_eq!(mine.alloc_fail, 0);
    assert_eq!(mine.allocs_served() - mine.free, 444);
    // Refill accounting is exact at quiescence, and every refill chain
    // landed in this class's per-CPU cache.
    assert_eq!(mine.refill + mine.alloc_fail, mine.alloc_miss);
    // Nothing ran on the other CPU or in other classes.
    let other_cpu = 1 - cpu.cpu().index();
    assert_eq!(delta.cpu_class(other_cpu, class64).alloc, 0);
    for (idx, cs) in delta.classes.iter().enumerate() {
        if idx != class64 {
            assert_eq!(cs.cache_total().alloc, 0, "class {idx} saw traffic");
        }
    }
    delta.check_live().unwrap();
    after.check_quiescent().unwrap();

    for p in held {
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free(p) };
    }
}

/// The aggregated view (`stats()`) and the snapshot view are the same
/// numbers — `stats()` is defined as `snapshot().aggregate()`, and the
/// per-CPU rows must sum to the per-class rollup.
#[test]
fn aggregate_is_the_sum_of_the_per_cpu_rows() {
    let a = arena(2);
    let cpu = a.register_cpu().unwrap();
    for i in 0..500usize {
        let size = 16 << (i % 5);
        let p = cpu.alloc(size).unwrap();
        // SAFETY: allocated above, freed exactly once.
        unsafe { cpu.free_sized(p, size) };
    }
    let snap = a.snapshot();
    let stats = snap.aggregate();
    for (idx, c) in stats.classes.iter().enumerate() {
        let total = snap.classes[idx].cache_total();
        assert_eq!(c.cpu_alloc.accesses, total.alloc);
        assert_eq!(c.cpu_alloc.misses, total.alloc_miss);
        assert_eq!(c.cpu_free.accesses, total.free);
        assert_eq!(c.cpu_free.misses, total.free_miss);
        assert_eq!(c.gbl_alloc.accesses, snap.classes[idx].global.get);
    }
    assert_eq!(stats.total_allocs(), snap.total_allocs());
}
