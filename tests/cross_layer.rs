//! Integration: traffic that exercises all four layers across CPUs.

use kmem::verify::{verify_arena, verify_conservation, verify_empty};
use kmem::{AllocError, KmemArena, KmemConfig};
use kmem_vm::SpaceConfig;

fn arena(ncpus: usize) -> KmemArena {
    KmemArena::new(KmemConfig::new(
        ncpus,
        SpaceConfig::new(32 << 20).vmblk_shift(20),
    ))
    .unwrap()
}

/// The pattern the global layer exists for: a producer CPU allocates,
/// consumer CPUs free, at high volume, across every size class.
#[test]
fn producer_consumer_rings() {
    /// A block in flight between CPUs: ownership moves with the message.
    struct Block(std::ptr::NonNull<u8>, usize);
    // SAFETY: the pointer is an owned, unaliased allocation; sending it
    // transfers that ownership (exactly how kernel subsystems hand buffers
    // between CPUs).
    unsafe impl Send for Block {}

    let a = arena(3);
    let producer = a.register_cpu().unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<Block>();
    let rx = std::sync::Mutex::new(rx);

    std::thread::scope(|s| {
        let a2 = a.clone();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let a = a2.clone();
                let rx = &rx;
                s.spawn(move || {
                    let cpu = a.register_cpu().unwrap();
                    let mut freed = 0usize;
                    loop {
                        let msg = rx.lock().unwrap().recv();
                        let Ok(Block(ptr, size)) = msg else { break };
                        // SAFETY: ownership arrived through the channel;
                        // freed exactly once.
                        unsafe { cpu.free_sized(ptr, size) };
                        freed += 1;
                    }
                    cpu.flush();
                    freed
                })
            })
            .collect();

        for i in 0..30_000usize {
            let size = 16 << (i % 9); // every class
            let p = producer.alloc(size).unwrap();
            // Write a signature over the whole block; the consumer's free
            // path must tolerate arbitrary contents.
            // SAFETY: freshly allocated block of at least `size` bytes.
            unsafe { core::ptr::write_bytes(p.as_ptr(), (i % 251) as u8, size) };
            tx.send(Block(p, size)).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 30_000);
    });

    producer.flush();
    a.reclaim();
    verify_empty(&a);
}

/// Every CPU both allocates and frees random sizes; conservation and
/// structural invariants must hold afterwards.
#[test]
fn all_cpu_mixed_traffic_conserves_blocks() {
    let a = arena(4);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let a = a.clone();
            s.spawn(move || {
                let cpu = a.register_cpu().unwrap();
                let mut held: Vec<(std::ptr::NonNull<u8>, usize)> = Vec::new();
                let mut x = t as u64;
                for i in 0..50_000usize {
                    // Cheap xorshift for determinism without rand.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = 16 << (x % 9);
                    if held.len() > 64 || (x.is_multiple_of(3) && !held.is_empty()) {
                        let (p, s) = held.swap_remove((x as usize) % held.len());
                        // SAFETY: allocated below, freed exactly once.
                        unsafe { cpu.free_sized(p, s) };
                    }
                    match cpu.alloc(size) {
                        Ok(p) => held.push((p, size)),
                        Err(e) => panic!("iteration {i}: {e}"),
                    }
                }
                for (p, s) in held {
                    // SAFETY: allocated above, freed exactly once.
                    unsafe { cpu.free_sized(p, s) };
                }
                cpu.flush();
            });
        }
    });
    a.reclaim();
    verify_arena(&a);
    verify_conservation(&a, &[0; 9]);
    verify_empty(&a);
}

/// Exhaustion, cooperative draining, recovery — goal 5 of the paper:
/// "any given CPU [must] be able to allocate the last remaining buffer".
#[test]
fn one_cpu_can_take_everything_with_cooperation() {
    let cfg = KmemConfig::new(2, SpaceConfig::new(4 << 20).vmblk_shift(16).phys_pages(64));
    let a = KmemArena::new(cfg).unwrap();
    let hog = a.register_cpu().unwrap();
    let other = a.register_cpu().unwrap();

    // The other CPU populates its caches, then goes idle.
    let mut warm = Vec::new();
    for _ in 0..32 {
        warm.push(other.alloc(1024).unwrap());
    }
    for p in warm {
        // SAFETY: allocated above, freed once.
        unsafe { other.free(p) };
    }
    assert!(other.cached_blocks() > 0);

    // The hog grabs every 1024-byte block the machine can back.
    let mut got = Vec::new();
    let mut stalled = 0;
    loop {
        match hog.alloc(1024) {
            Ok(p) => {
                stalled = 0;
                got.push(p);
            }
            Err(AllocError::OutOfMemory { .. }) => {
                other.poll(); // services the drain request (the "IPI")
                stalled += 1;
                if stalled > 2 {
                    break;
                }
            }
            Err(e) => panic!("{e}"),
        }
    }
    // The pool holds 64 frames; headers take some, the rest must all be
    // in the hog's hands as 4 blocks per page.
    assert!(got.len() >= 200, "only got {} blocks", got.len());
    assert_eq!(other.cached_blocks(), 0);

    for p in got {
        // SAFETY: allocated above, freed once.
        unsafe { hog.free(p) };
    }
    hog.flush();
    other.flush();
    a.reclaim();
    verify_empty(&a);
}

/// Handles migrate between threads (Send), and per-class split-freelist
/// bounds hold at every step.
#[test]
fn handle_migration_and_cache_bounds() {
    let a = arena(1);
    let cpu = a.register_cpu().unwrap();
    // Addresses rather than pointers so the vector is plainly `Send`;
    // ownership of the blocks still moves with it.
    let mut held: Vec<usize> = Vec::new();
    for _ in 0..100 {
        held.push(cpu.alloc(64).unwrap().as_ptr() as usize);
    }
    // Move the handle (and the obligation to free) to another thread.
    let cpu = std::thread::spawn(move || {
        for addr in held {
            let p = std::ptr::NonNull::new(addr as *mut u8).unwrap();
            // SAFETY: allocated above, freed once; the address round-trip
            // does not change the provenance-relevant allocation.
            unsafe { cpu.free(p) };
        }
        let class = 2; // 64-byte class in the default ladder
        let (main, aux) = cpu.cache_shape(class);
        let target = 10; // heuristic target for 64 B
        assert!(main <= target && aux <= target, "bounds: {main}/{aux}");
        cpu
    })
    .join()
    .unwrap();
    cpu.flush();
    a.reclaim();
    verify_empty(&a);
}

/// Large allocations interleaved with class allocations share the same
/// vmblks without corrupting each other.
#[test]
fn large_and_small_interleave() {
    let a = arena(1);
    let cpu = a.register_cpu().unwrap();
    let mut small = Vec::new();
    let mut large = Vec::new();
    for i in 0..200usize {
        small.push(cpu.alloc(256).unwrap());
        if i % 10 == 0 {
            let p = cpu.alloc(2 * 4096 + 123).unwrap();
            // SAFETY: a 3-page span was allocated.
            unsafe { core::ptr::write_bytes(p.as_ptr(), 0xC3, 2 * 4096 + 123) };
            large.push(p);
        }
    }
    // Free in the awkward order: large first.
    for p in large {
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free(p) };
    }
    for p in small {
        // SAFETY: allocated above, freed once.
        unsafe { cpu.free_sized(p, 256) };
    }
    cpu.flush();
    a.reclaim();
    verify_empty(&a);
}
