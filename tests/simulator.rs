//! Integration: the discrete-event SMP simulator reproduces the paper's
//! scaling shapes from the real allocator implementations.

use kmem::{KmemArena, KmemConfig};
use kmem_baselines::{KmemCookieAlloc, KmemStdAlloc, MkAllocator, OldKma};
use kmem_bench::{sim_pairs_per_sec, BASE_COOKIE, BASE_MK, BASE_NEWKMA, BASE_OLDKMA};
use kmem_sim::analysis::{allocb_pattern, profile_two_cpu};
use kmem_sim::CostModel;
use kmem_vm::SpaceConfig;

fn kmem_arena(ncpus: usize) -> KmemArena {
    KmemArena::new(KmemConfig::new(ncpus, SpaceConfig::new(32 << 20))).unwrap()
}

/// Figure 7 shape: the new allocator scales near-linearly; the lock-based
/// baselines plateau or decline; the headline ratios hold.
#[test]
fn figure7_shapes_hold() {
    let ops = 2_000u64;
    let cookie = |n: usize| {
        let a = KmemCookieAlloc::new(kmem_arena(n));
        sim_pairs_per_sec(&a, 256, n, ops, BASE_COOKIE).pairs_per_sec
    };
    let newkma = |n: usize| {
        let a = KmemStdAlloc::new(kmem_arena(n));
        sim_pairs_per_sec(&a, 256, n, ops, BASE_NEWKMA).pairs_per_sec
    };
    let mk = |n: usize| {
        let a = MkAllocator::new(32 << 20, 8192);
        sim_pairs_per_sec(&a, 256, n, ops, BASE_MK).pairs_per_sec
    };
    let oldkma = |n: usize| {
        let a = OldKma::new(32 << 20, 8192);
        sim_pairs_per_sec(&a, 256, n, ops, BASE_OLDKMA).pairs_per_sec
    };

    let (c1, c12) = (cookie(1), cookie(12));
    let (s1, s12) = (newkma(1), newkma(12));
    let (m1, m12) = (mk(1), mk(12));
    let (o1, o12) = (oldkma(1), oldkma(12));

    // Near-linear speedup for both new interfaces.
    assert!(c12 / c1 > 10.0, "cookie speedup {:.1}", c12 / c1);
    assert!(s12 / s1 > 10.0, "newkma speedup {:.1}", s12 / s1);
    // Standard interface roughly half the cookie rate.
    let ratio = s12 / c12;
    assert!((0.3..0.8).contains(&ratio), "newkma/cookie = {ratio:.2}");
    // Baselines do not scale; their best is at or near 1 CPU.
    assert!(m12 < m1 * 1.3, "mk scaled: {m1:.0} -> {m12:.0}");
    assert!(o12 < o1 * 1.3, "oldkma scaled: {o1:.0} -> {o12:.0}");
    // Paper's single-CPU ratio: cookie ≈ 15x oldkma (±30 %).
    let r1 = c1 / o1;
    assert!((10.0..20.0).contains(&r1), "cookie/oldkma @1 = {r1:.1}");
    // And the gap explodes with CPUs (three orders of magnitude at 25;
    // already >100x at 12).
    let r12 = c12 / o12;
    assert!(r12 > 100.0, "cookie/oldkma @12 = {r12:.1}");
}

/// Determinism: identical runs produce identical simulated results.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let a = KmemCookieAlloc::new(kmem_arena(4));
        let p = sim_pairs_per_sec(&a, 128, 4, 1_000, BASE_COOKIE);
        p.pairs_per_sec.to_bits()
    };
    assert_eq!(run(), run());
    let run_mk = || {
        let a = MkAllocator::new(16 << 20, 4096);
        sim_pairs_per_sec(&a, 128, 3, 1_000, BASE_MK)
            .pairs_per_sec
            .to_bits()
    };
    assert_eq!(run_mk(), run_mk());
}

/// The Analysis-section profile: contended allocb is several times slower
/// than nominal, and its off-chip accesses dominate elapsed time.
#[test]
fn analysis_profile_matches_paper_shape() {
    let profile = profile_two_cpu(&allocb_pattern(287), 3, CostModel::default());
    assert_eq!(profile.accesses, 304); // the paper's traced access count
    assert!(profile.slowdown() > 2.0);
    assert!(profile.worst_offchip_share(1.0) > 0.5);
    // The worst *half* of the misses still carries a large share — the
    // distribution is top-heavy, as in the paper's table.
    assert!(profile.worst_offchip_share(0.5) > 0.25);
}

/// The sim must be able to drive every allocator via real threads too
/// (smoke test for the `--threads` mode used on real SMP hosts).
#[test]
fn thread_mode_smoke() {
    let a = KmemCookieAlloc::new(kmem_arena(2));
    let rate = kmem_bench::thread_pairs_per_sec(&a, 256, 2, std::time::Duration::from_millis(40));
    assert!(rate > 0.0);
}
