#!/usr/bin/env bash
# Soak lane (NOT tier-1): the `#[ignore]`d multi-million-op torture soaks
# (`tests/soak.rs`), run repeatedly with a rotated KMEM_TORTURE_SEED so
# successive rounds explore different operation programs. Every phase
# checkpoint inside each soak runs the full invariant walkers plus the
# snapshot consistency checks (quiescent equalities, monotonicity, delta
# exactness against ground truth).
#
# Usage: scripts/soak.sh [rounds]           (default: 3)
#   KMEM_SOAK_BASE_SEED=N   fix the seed ladder for reproducible rotation
#                           (default: current epoch seconds)
#   KMEM_SOAK_FAULTS=1      additionally run the fault-injection torture
#                           each round, rotating KMEM_TORTURE_FAULT_SEED
#                           on the same ladder as KMEM_TORTURE_SEED
#   KMEM_SOAK_HARDENED=0/1  force the hardened profile off/on for every
#                           round; unset, it rotates (odd rounds run with
#                           every corruption defense armed, even rounds
#                           with the plain profile)
#   KMEM_SOAK_MAINT=0/1     force the background maintenance core off/on
#                           for every round; unset, it rotates on its own
#                           phase (rounds 2, 4, ... run with a live
#                           maintenance thread draining the mailbox while
#                           the marathon traffic runs)
#
# A failing round prints the reproducing seed in the panic message;
# re-run just that round with KMEM_TORTURE_SEED=<seed> cargo test ...
# (faulted rounds also need KMEM_TORTURE_FAULT_SEED=<fault seed>).

set -euo pipefail
cd "$(dirname "$0")/.."

rounds="${1:-3}"
base_seed="${KMEM_SOAK_BASE_SEED:-$(date +%s)}"
faults="${KMEM_SOAK_FAULTS:-0}"

echo "==> soak: $rounds rounds, seed ladder from $base_seed (faults: $faults)"
echo "==> building release test binaries (offline)"
cargo build --release --offline --tests

for i in $(seq 1 "$rounds"); do
    # Large odd stride: consecutive rounds share no low-bit structure.
    seed=$(( base_seed + i * 1000003 ))
    # Rotate the NUMA shard count 1/2/4 so successive rounds soak the
    # flat arena, the two-node steal path, and the fully sharded layout.
    nodes=$(( 1 << ((i - 1) % 3) ))
    # Rotate the hardened profile unless pinned: odd rounds soak with
    # every corruption defense armed (a false detection fails the round).
    hardened="${KMEM_SOAK_HARDENED:-$(( i % 2 ))}"
    # Rotate the maintenance core on the opposite phase unless pinned, so
    # over any two rounds both offload states soak under both profiles'
    # schedule pressure.
    maint="${KMEM_SOAK_MAINT:-$(( (i + 1) % 2 ))}"
    echo "==> round $i/$rounds: KMEM_TORTURE_SEED=$seed KMEM_SOAK_NODES=$nodes KMEM_SOAK_HARDENED=$hardened KMEM_SOAK_MAINT=$maint"
    KMEM_TORTURE_SEED="$seed" KMEM_SOAK_NODES="$nodes" \
        KMEM_SOAK_HARDENED="$hardened" KMEM_SOAK_MAINT="$maint" \
        cargo test -q --release --offline --test soak -- --ignored
    if [ "$faults" != "0" ]; then
        # Same ladder, different stream: the fault schedule rotates with
        # the round while the op seed above keeps its own rotation.
        fault_seed=$(( base_seed + i * 1000033 ))
        echo "==> round $i/$rounds: KMEM_TORTURE_FAULT_SEED=$fault_seed"
        KMEM_TORTURE_FAULTS=1 KMEM_TORTURE_FAULT_SEED="$fault_seed" \
            KMEM_TORTURE_SEED="$seed" KMEM_TORTURE_HARDENED="$hardened" \
            cargo test -q --release --offline -p kmem-testkit \
            --test torture fault_injection
    fi
done

echo "==> global contention bench (threaded ping-pong, writes BENCH_global.json)"
cargo bench -q --offline -p kmem-bench --features bench-ext \
    --bench global_contention

echo "==> page contention bench (wall + simulated SMP, writes BENCH_page.json)"
cargo bench -q --offline -p kmem-bench --features bench-ext \
    --bench page_contention

echo "==> maintenance tail-latency bench (core vs inline, writes BENCH_maint.json)"
# Self-asserting: core p99/p999 must beat inline at 8 threads with the
# mean within 10%, or the bench binary itself fails the lane.
cargo bench -q --offline -p kmem-bench --features bench-ext \
    --bench maint_latency

echo "==> OK: $rounds soak rounds passed"
