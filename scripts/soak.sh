#!/usr/bin/env bash
# Soak lane (NOT tier-1): the `#[ignore]`d multi-million-op torture soaks
# (`tests/soak.rs`), run repeatedly with a rotated KMEM_TORTURE_SEED so
# successive rounds explore different operation programs. Every phase
# checkpoint inside each soak runs the full invariant walkers plus the
# snapshot consistency checks (quiescent equalities, monotonicity, delta
# exactness against ground truth).
#
# Usage: scripts/soak.sh [rounds]           (default: 3)
#   KMEM_SOAK_BASE_SEED=N   fix the seed ladder for reproducible rotation
#                           (default: current epoch seconds)
#
# A failing round prints the reproducing seed in the panic message;
# re-run just that round with KMEM_TORTURE_SEED=<seed> cargo test ...

set -euo pipefail
cd "$(dirname "$0")/.."

rounds="${1:-3}"
base_seed="${KMEM_SOAK_BASE_SEED:-$(date +%s)}"

echo "==> soak: $rounds rounds, seed ladder from $base_seed"
echo "==> building release test binaries (offline)"
cargo build --release --offline --tests

for i in $(seq 1 "$rounds"); do
    # Large odd stride: consecutive rounds share no low-bit structure.
    seed=$(( base_seed + i * 1000003 ))
    echo "==> round $i/$rounds: KMEM_TORTURE_SEED=$seed"
    KMEM_TORTURE_SEED="$seed" \
        cargo test -q --release --offline --test soak -- --ignored
done

echo "==> OK: $rounds soak rounds passed"
