#!/usr/bin/env bash
# Tier-1 gate: everything here must pass before a change lands.
#
# The whole pipeline runs offline — the workspace is hermetic (no
# crates.io dependencies), and the first step proves it stays that way.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hermeticity: dependency tree must contain only kmem* crates"
tree=$(cargo tree --workspace --offline --prefix none --no-dedupe \
    -e normal,build,dev | awk '{print $1}' | sort -u)
foreign=$(echo "$tree" | grep -v '^kmem' || true)
if [ -n "$foreign" ]; then
    echo "ERROR: non-workspace dependencies crept in:" >&2
    echo "$foreign" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo clippy -p kmem-bench --all-targets --features bench-ext --offline \
    -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test (workspace, offline)"
cargo test -q --offline --workspace

echo "==> snapshot invariant tests (live sampling + delta exactness)"
cargo test -q --offline --test observability

echo "==> fault-injection torture (3 bounded rounds, rotated fault seeds)"
# Every failpoint site, every policy shape, under the multi-threaded mix.
# The seed only rotates the fault schedule; the op streams stay fixed, so
# a failure reproduces with the printed KMEM_TORTURE_FAULT_SEED.
for i in 1 2 3; do
    fault_seed=$(( 0x5EED + i * 7919 ))
    echo "    round $i/3: KMEM_TORTURE_FAULT_SEED=$fault_seed"
    KMEM_TORTURE_FAULTS=1 KMEM_TORTURE_FAULT_SEED="$fault_seed" \
        cargo test -q --release --offline -p kmem-testkit --test torture \
        fault_injection
done

echo "==> global-layer contention regression (thread sweep, faults on)"
# The lock-free stack / locked-bucket seam under real threads: put_odd
# storms against racing gets, with the global.get failpoint armed so
# injected misses interleave with contention. Conservation and regrouping
# are asserted inside the tests.
for t in 2 4 8; do
    echo "    KMEM_GLOBAL_THREADS=$t"
    KMEM_TORTURE_FAULTS=1 KMEM_GLOBAL_THREADS="$t" \
        cargo test -q --release --offline -p kmem-testkit \
        --test global_contention
done

echo "==> page-layer contention regression (thread sweep, faults on)"
# The lock-free page & vmblk stack under real threads: chain rings churn
# the tagged radix lists while periodic full drains force coalesce-to-page
# and whole-page-cache traffic, with the page.get / page.coalesce /
# vmblk.cache failpoints armed. Conservation and recovery are asserted
# inside the tests.
for t in 2 4 8; do
    echo "    KMEM_PAGE_THREADS=$t"
    KMEM_TORTURE_FAULTS=1 KMEM_PAGE_THREADS="$t" \
        cargo test -q --release --offline -p kmem-testkit \
        --test page_contention
done

echo "==> hardened profile (release): detection guards + torture round"
# The corruption defenses must detect in *release* builds, not just under
# debug_assertions: the misuse guards (double free, use-after-free,
# clobbered link, cross-arena cookie) and the typed-error/property flows
# run with every defense armed, then the fault-injection torture mix
# reruns on a hardened arena — encoded links, poisoning, randomized
# carve, and the quarantine under injected failures, with conservation
# checked at every phase boundary.
cargo test -q --release --offline -p kmem-testkit --test misuse
cargo test -q --release --offline -p kmem-testkit --test hardened
KMEM_TORTURE_HARDENED=1 KMEM_TORTURE_FAULTS=1 \
    cargo test -q --release --offline -p kmem-testkit --test torture \
    fault_injection

echo "==> maintenance-core round (mailbox offload, faults on)"
# The background maintenance core under the full torture mix: slow-path
# trims, regroups, spills, and pressure drain-requests route through the
# lock-free mailbox instead of running inline, and the driver pumps the
# mailbox at every quiescent checkpoint, asserting it settles exactly
# (drained == posted - deduped, backlog empty). KMEM_TORTURE_MAINT=1
# additionally reruns the standard and low-memory mixes with the core on,
# so the offload path sees the same op streams as the inline tier-1 runs.
cargo test -q --release --offline -p kmem-testkit --test torture \
    maintenance_core
KMEM_TORTURE_MAINT=1 KMEM_TORTURE_FAULTS=1 \
    cargo test -q --release --offline -p kmem-testkit --test torture

echo "==> NUMA steal-path regression (2 nodes x 4 CPUs, faults on)"
# The sharded global layer under cross-node producer/consumer flow:
# steals must move whole chains without breaking per-class conservation,
# an injected global.steal failure must route refills to the page layer,
# and the 4-node torture round runs the full mix with every failpoint
# site armed (the steal site included).
KMEM_TORTURE_FAULTS=1 cargo test -q --release --offline -p kmem-testkit \
    --test numa_steal

echo "==> OK: all tier-1 checks passed"
